package mlearn

import (
	"fmt"
	"math/rand"
	"sort"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// TPR returns the true positive rate (recall on the positive class).
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false positive rate.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Accuracy returns overall accuracy.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns positive predictive value.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Add accumulates another matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d TPR=%.3f FPR=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.TPR(), c.FPR())
}

// scored is one held-out prediction.
type scored struct {
	prob float64
	pos  bool
}

// CrossValidate runs k-fold cross-validation (the paper's standard 10-fold
// methodology), training a fresh classifier from mk per fold, and returns
// the pooled held-out predictions for downstream thresholding. Folds are
// stratified by shuffling; rng controls the shuffle for reproducibility.
func CrossValidate(mk func() Classifier, x [][]float64, y []bool, folds int, rng *rand.Rand) (*CVResult, error) {
	if _, err := checkTrainingSet(x, y); err != nil {
		return nil, err
	}
	if folds < 2 {
		folds = 2
	}
	if folds > len(x) {
		folds = len(x)
	}
	perm := rng.Perm(len(x))
	res := &CVResult{}
	for f := 0; f < folds; f++ {
		var trainX, testX [][]float64
		var trainY, testY []bool
		for j, idx := range perm {
			if j%folds == f {
				testX = append(testX, x[idx])
				testY = append(testY, y[idx])
			} else {
				trainX = append(trainX, x[idx])
				trainY = append(trainY, y[idx])
			}
		}
		c := mk()
		if err := c.Fit(trainX, trainY); err != nil {
			return nil, fmt.Errorf("fold %d: %w", f, err)
		}
		for j, sample := range testX {
			p, err := c.PredictProb(sample)
			if err != nil {
				return nil, fmt.Errorf("fold %d predict: %w", f, err)
			}
			res.preds = append(res.preds, scored{prob: p, pos: testY[j]})
		}
	}
	return res, nil
}

// CVResult holds pooled held-out predictions from cross-validation.
type CVResult struct {
	preds []scored
}

// Len returns the number of held-out predictions.
func (r *CVResult) Len() int { return len(r.preds) }

// ConfusionAt thresholds the pooled predictions at theta.
func (r *CVResult) ConfusionAt(theta float64) Confusion {
	var c Confusion
	for _, p := range r.preds {
		predicted := p.prob >= theta
		switch {
		case predicted && p.pos:
			c.TP++
		case predicted && !p.pos:
			c.FP++
		case !predicted && p.pos:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// ROCPoint is one operating point of the ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROC sweeps thresholds over the pooled predictions and returns the curve
// ordered by increasing FPR (ending at the all-positive corner).
func (r *CVResult) ROC() []ROCPoint {
	if len(r.preds) == 0 {
		return nil
	}
	// Sweep every distinct probability as a threshold, plus the corners.
	thresholds := make([]float64, 0, len(r.preds)+2)
	seen := make(map[float64]struct{})
	for _, p := range r.preds {
		if _, dup := seen[p.prob]; !dup {
			seen[p.prob] = struct{}{}
			thresholds = append(thresholds, p.prob)
		}
	}
	thresholds = append(thresholds, 0, 1.0000001)
	sort.Sort(sort.Reverse(sort.Float64Slice(thresholds)))
	pts := make([]ROCPoint, 0, len(thresholds))
	for _, th := range thresholds {
		c := r.ConfusionAt(th)
		pts = append(pts, ROCPoint{Threshold: th, TPR: c.TPR(), FPR: c.FPR()})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FPR != pts[j].FPR {
			return pts[i].FPR < pts[j].FPR
		}
		return pts[i].TPR < pts[j].TPR
	})
	return pts
}

// AUC integrates the ROC curve with the trapezoid rule.
func (r *CVResult) AUC() float64 {
	pts := r.ROC()
	if len(pts) < 2 {
		return 0
	}
	var auc float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].FPR - pts[i-1].FPR
		auc += dx * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return auc
}

// ModelScore summarizes one candidate during model selection.
type ModelScore struct {
	Name     string
	AUC      float64
	At05     Confusion // operating point theta = 0.5
	At09     Confusion // operating point theta = 0.9
	Accuracy float64
}

// SelectModel cross-validates each named candidate and returns the scores
// sorted by descending AUC — the paper's model-selection experiment that
// chose the LAD tree over NB, kNN, neural nets and logistic regression.
func SelectModel(candidates map[string]func() Classifier, x [][]float64, y []bool, folds int, rng *rand.Rand) ([]ModelScore, error) {
	names := make([]string, 0, len(candidates))
	for name := range candidates {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic rng consumption order
	out := make([]ModelScore, 0, len(names))
	for _, name := range names {
		res, err := CrossValidate(candidates[name], x, y, folds, rng)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", name, err)
		}
		at05 := res.ConfusionAt(0.5)
		out = append(out, ModelScore{
			Name:     name,
			AUC:      res.AUC(),
			At05:     at05,
			At09:     res.ConfusionAt(0.9),
			Accuracy: at05.Accuracy(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AUC > out[j].AUC })
	return out, nil
}
