// Package dntree implements the domain name tree of Section V-A: a trie of
// labels rooted at ".", where a node is black when a resource record for its
// name was observed in the dataset, and white otherwise. The miner walks
// zones of this tree, groups black descendants by depth (the G_k sets),
// extracts the label sets adjacent to the zone under inspection (the L_k
// sets), and decolors nodes classified as disposable.
package dntree

import (
	"sort"
	"strings"

	"dnsnoise/internal/dnsname"
)

// Tree is the domain name tree. The zero value is not usable; call New.
type Tree struct {
	root     *node
	suffixes *dnsname.Suffixes
	// e2lds refcounts black nodes per registrable domain: batch inserts
	// only ever increment (a zone stays a mining start point for the whole
	// day), while the streaming expiry path (stream.go) decrements so
	// zones whose names all aged out stop being walked.
	e2lds map[string]int
	black int

	// Streaming state (see stream.go). window is the current window
	// ordinal; byWindow records names first stamped in each window so
	// expiry touches only that window's names, not the whole tree;
	// windowBlack counts black nodes per last-seen window.
	window      uint32
	byWindow    map[uint32][]string
	windowBlack map[uint32]int
}

type node struct {
	children map[string]*node
	black    bool
	// lastSeen is the window ordinal of the node's most recent
	// observation while black; meaningful only for streaming trees.
	lastSeen uint32
}

// New returns an empty tree using suffixes for effective-2LD extraction.
// Passing nil uses dnsname.DefaultSuffixes().
func New(suffixes *dnsname.Suffixes) *Tree {
	if suffixes == nil {
		suffixes = dnsname.DefaultSuffixes()
	}
	return &Tree{
		root:     &node{children: make(map[string]*node)},
		suffixes: suffixes,
		e2lds:    make(map[string]int),
	}
}

// Insert marks name as a black node, creating intermediate white nodes along
// the path. Names are normalized. Inserting an existing black node is a
// no-op.
func (t *Tree) Insert(name string) {
	name = dnsname.Normalize(name)
	if name == "" {
		return
	}
	n := t.walk(name, true)
	if !n.black {
		n.black = true
		t.black++
		if e2ld := t.suffixes.ETLDPlusOne(name); e2ld != "" {
			t.e2lds[e2ld]++
		}
	}
}

// walk descends right-to-left through the labels of name, optionally
// creating missing nodes; returns nil when create is false and the path is
// absent.
func (t *Tree) walk(name string, create bool) *node {
	labels := dnsname.Labels(name)
	n := t.root
	for i := len(labels) - 1; i >= 0; i-- {
		child, ok := n.children[labels[i]]
		if !ok {
			if !create {
				return nil
			}
			child = &node{children: make(map[string]*node)}
			n.children[labels[i]] = child
		}
		n = child
	}
	return n
}

// IsBlack reports whether name is currently a black node.
func (t *Tree) IsBlack(name string) bool {
	n := t.walk(dnsname.Normalize(name), false)
	return n != nil && n.black
}

// BlackCount returns the number of black nodes in the tree.
func (t *Tree) BlackCount() int { return t.black }

// Decolor turns name's node white, if present and black, and reports
// whether anything changed. The node (and its descendants) remain in the
// tree structure.
func (t *Tree) Decolor(name string) bool {
	n := t.walk(dnsname.Normalize(name), false)
	if n == nil || !n.black {
		return false
	}
	n.black = false
	t.black--
	return true
}

// Effective2LDs returns the distinct registrable domains (effective 2LDs)
// of every name ever inserted, sorted — the starting zones for Algorithm 1.
func (t *Tree) Effective2LDs() []string {
	out := make([]string, 0, len(t.e2lds))
	for z := range t.e2lds {
		out = append(out, z)
	}
	sort.Strings(out)
	return out
}

// Group is one G_k set: the black strict descendants of Zone at depth
// Depth, with the distinct labels adjacent to the zone (the L_k set).
type Group struct {
	Zone  string
	Depth int
	// Names holds the full domain names of the group's black nodes.
	Names []string
	// Labels is the distinct set of labels immediately left of Zone among
	// Names (paper: "labels next to the zone under inspection").
	Labels []string
}

// GroupsUnder returns the G_k sets under zone, ordered by increasing depth.
// The zone's own node (even if black) is not part of any group; only strict
// descendants count. An absent zone yields nil.
func (t *Tree) GroupsUnder(zone string) []Group {
	zone = dnsname.Normalize(zone)
	zn := t.walk(zone, false)
	if zn == nil {
		return nil
	}
	zoneDepth := dnsname.Depth(zone)
	byDepth := make(map[int]*Group)
	labelSeen := make(map[int]map[string]struct{})

	var descend func(n *node, name string, adjacent string, depth int)
	descend = func(n *node, name string, adjacent string, depth int) {
		if n.black {
			g, ok := byDepth[depth]
			if !ok {
				g = &Group{Zone: zone, Depth: depth}
				byDepth[depth] = g
				labelSeen[depth] = make(map[string]struct{})
			}
			g.Names = append(g.Names, name)
			if _, dup := labelSeen[depth][adjacent]; !dup {
				labelSeen[depth][adjacent] = struct{}{}
				g.Labels = append(g.Labels, adjacent)
			}
		}
		for label, child := range n.children {
			childAdjacent := adjacent
			if depth == zoneDepth {
				// Direct children of the zone define the adjacent label for
				// their whole subtree.
				childAdjacent = label
			}
			descend(child, label+"."+name, childAdjacent, depth+1)
		}
	}
	for label, child := range zn.children {
		descend(child, label+"."+zone, label, zoneDepth+1)
	}

	depths := make([]int, 0, len(byDepth))
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	out := make([]Group, 0, len(depths))
	for _, d := range depths {
		g := byDepth[d]
		sort.Strings(g.Names)
		sort.Strings(g.Labels)
		out = append(out, *g)
	}
	return out
}

// ChildZones returns the names of zone's direct child nodes (black or
// white) that still have black descendants or are black themselves — the
// recursion set of Algorithm 1 (lines 15-17). Sorted.
func (t *Tree) ChildZones(zone string) []string {
	zone = dnsname.Normalize(zone)
	zn := t.walk(zone, false)
	if zn == nil {
		return nil
	}
	var out []string
	for label, child := range zn.children {
		if child.black || hasBlackDescendant(child) {
			out = append(out, label+"."+zone)
		}
	}
	sort.Strings(out)
	return out
}

// HasBlackDescendants reports whether zone has any black strict descendant
// (Algorithm 1, line 1).
func (t *Tree) HasBlackDescendants(zone string) bool {
	zn := t.walk(dnsname.Normalize(zone), false)
	if zn == nil {
		return false
	}
	return hasBlackDescendant(zn)
}

func hasBlackDescendant(n *node) bool {
	for _, child := range n.children {
		if child.black || hasBlackDescendant(child) {
			return true
		}
	}
	return false
}

// NamesUnder returns all black names that are strict descendants of zone,
// sorted. Useful for reporting and for wildcard collapsing.
func (t *Tree) NamesUnder(zone string) []string {
	var out []string
	for _, g := range t.GroupsUnder(zone) {
		out = append(out, g.Names...)
	}
	sort.Strings(out)
	return out
}

// String renders a compact indented dump, black nodes marked with "*".
// Intended for debugging and small trees only.
func (t *Tree) String() string {
	var sb strings.Builder
	var dump func(n *node, label string, indent int)
	dump = func(n *node, label string, indent int) {
		sb.WriteString(strings.Repeat("  ", indent))
		sb.WriteString(label)
		if n.black {
			sb.WriteString(" *")
		}
		sb.WriteByte('\n')
		labels := make([]string, 0, len(n.children))
		for l := range n.children {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			dump(n.children[l], l, indent+1)
		}
	}
	dump(t.root, ".", 0)
	return sb.String()
}
