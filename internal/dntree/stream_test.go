package dntree

import (
	"reflect"
	"sort"
	"testing"
)

// TestStreamEquivalenceWithBatch pins the day-equivalence contract at the
// tree layer: with expiry disabled, a streaming tree fed InsertAt over the
// same names as a batch Insert holds an identical black set, e2ld set, and
// group structure — regardless of insertion order or window spread.
func TestStreamEquivalenceWithBatch(t *testing.T) {
	names := []string{
		"x1.api.cdn.example.com",
		"x2.api.cdn.example.com",
		"a9.api.cdn.example.com",
		"www.example.com",
		"mail.other.org",
		"b.mail.other.org",
		"x1.api.cdn.example.com", // duplicate
	}
	batch := New(nil)
	for _, n := range names {
		batch.Insert(n)
	}
	stream := New(nil)
	for i, n := range names {
		if i == 3 {
			stream.AdvanceWindow() // split the insertions across windows
		}
		stream.InsertAt(n)
	}
	if got, want := stream.BlackCount(), batch.BlackCount(); got != want {
		t.Fatalf("BlackCount: stream %d, batch %d", got, want)
	}
	if got, want := stream.Effective2LDs(), batch.Effective2LDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Effective2LDs: stream %v, batch %v", got, want)
	}
	for _, zone := range batch.Effective2LDs() {
		if got, want := stream.GroupsUnder(zone), batch.GroupsUnder(zone); !reflect.DeepEqual(got, want) {
			t.Fatalf("GroupsUnder(%s): stream %+v, batch %+v", zone, got, want)
		}
	}
}

// TestRecolorUndoesDecolor checks the mine-then-restore cycle the
// streaming re-score relies on.
func TestRecolorUndoesDecolor(t *testing.T) {
	tr := New(nil)
	tr.InsertAt("a.zone.example.net")
	tr.InsertAt("b.zone.example.net")
	before := tr.BlackCount()
	if !tr.Decolor("a.zone.example.net") {
		t.Fatal("Decolor returned false for a black node")
	}
	if tr.IsBlack("a.zone.example.net") {
		t.Fatal("node still black after Decolor")
	}
	if !tr.Recolor("a.zone.example.net") {
		t.Fatal("Recolor returned false for a decolored node")
	}
	if tr.Recolor("a.zone.example.net") {
		t.Fatal("Recolor reported a change on an already-black node")
	}
	if tr.Recolor("never.inserted.example.net") {
		t.Fatal("Recolor invented a node")
	}
	if got := tr.BlackCount(); got != before {
		t.Fatalf("BlackCount after decolor+recolor = %d, want %d", got, before)
	}
	if !tr.IsBlack("a.zone.example.net") {
		t.Fatal("node not black after Recolor")
	}
}

// TestExpireBefore exercises sliding-window decay: names not re-observed
// within the keep horizon are decolored and pruned; re-observed names
// survive with their newer stamp.
func TestExpireBefore(t *testing.T) {
	tr := New(nil)
	tr.InsertAt("old.zone.example.com")    // window 0
	tr.InsertAt("stable.zone.example.com") // window 0
	tr.AdvanceWindow()
	tr.InsertAt("stable.zone.example.com") // re-observed in window 1
	tr.InsertAt("new.zone.example.com")    // window 1

	if got := tr.BlackInWindow(1); got != 2 {
		t.Fatalf("BlackInWindow(1) = %d, want 2", got)
	}
	expired := tr.ExpireBefore(1)
	sort.Strings(expired)
	if want := []string{"old.zone.example.com"}; !reflect.DeepEqual(expired, want) {
		t.Fatalf("expired = %v, want %v", expired, want)
	}
	if tr.IsBlack("old.zone.example.com") {
		t.Fatal("expired name still black")
	}
	if !tr.IsBlack("stable.zone.example.com") || !tr.IsBlack("new.zone.example.com") {
		t.Fatal("surviving names lost their color")
	}
	if got := tr.BlackCount(); got != 2 {
		t.Fatalf("BlackCount = %d, want 2", got)
	}
	// The e2ld survives while any black name remains, and disappears once
	// the last one expires.
	if got := tr.Effective2LDs(); !reflect.DeepEqual(got, []string{"example.com"}) {
		t.Fatalf("Effective2LDs = %v", got)
	}
	tr.AdvanceWindow()
	tr.AdvanceWindow()
	if expired := tr.ExpireBefore(3); len(expired) != 2 {
		t.Fatalf("second expiry = %v, want both survivors", expired)
	}
	if got := tr.Effective2LDs(); len(got) != 0 {
		t.Fatalf("Effective2LDs after full expiry = %v, want empty", got)
	}
	if tr.BlackCount() != 0 {
		t.Fatalf("BlackCount after full expiry = %d", tr.BlackCount())
	}
	// Pruned: the zone has no remaining structure to group.
	if gs := tr.GroupsUnder("example.com"); len(gs) != 0 {
		t.Fatalf("groups under pruned zone: %+v", gs)
	}
}

// TestResetStream starts a fresh day but keeps the window ordinal running.
func TestResetStream(t *testing.T) {
	tr := New(nil)
	tr.InsertAt("a.zone.example.com")
	tr.AdvanceWindow()
	tr.ResetStream()
	if tr.BlackCount() != 0 || len(tr.Effective2LDs()) != 0 {
		t.Fatal("ResetStream left names behind")
	}
	if tr.Window() != 1 {
		t.Fatalf("Window after reset = %d, want 1", tr.Window())
	}
	tr.InsertAt("b.zone.example.com")
	if !tr.IsBlack("b.zone.example.com") {
		t.Fatal("insert after reset failed")
	}
}
