package dntree

import (
	"strings"
	"testing"
	"testing/quick"

	"dnsnoise/internal/labelgen"
	"math/rand"
)

// paperNames reproduces the example of Figure 8.
var paperNames = []string{
	"a.example.com",
	"i.1.a.example.com",
	"2.a.example.com",
	"3.a.example.com",
	"4.b.example.com",
	"c.example.com",
}

func paperTree() *Tree {
	t := New(nil)
	for _, n := range paperNames {
		t.Insert(n)
	}
	return t
}

func TestInsertAndBlackness(t *testing.T) {
	tr := paperTree()
	if tr.BlackCount() != len(paperNames) {
		t.Errorf("BlackCount = %d, want %d", tr.BlackCount(), len(paperNames))
	}
	for _, n := range paperNames {
		if !tr.IsBlack(n) {
			t.Errorf("%q should be black", n)
		}
	}
	// Intermediate nodes on the path are white.
	for _, n := range []string{"example.com", "b.example.com", "1.a.example.com", "com"} {
		if tr.IsBlack(n) {
			t.Errorf("%q should be white", n)
		}
	}
}

func TestInsertIdempotent(t *testing.T) {
	tr := New(nil)
	tr.Insert("a.example.com")
	tr.Insert("A.Example.COM.")
	if tr.BlackCount() != 1 {
		t.Errorf("BlackCount = %d, want 1 (normalized duplicate)", tr.BlackCount())
	}
	tr.Insert("")
	if tr.BlackCount() != 1 {
		t.Errorf("empty insert changed the tree")
	}
}

func TestGroupsUnderPaperExample(t *testing.T) {
	tr := paperTree()
	groups := tr.GroupsUnder("example.com")
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (G3, G4, G5)", len(groups))
	}
	// G3 = {a.example.com, c.example.com}, L3 = {a, c}
	g3 := groups[0]
	if g3.Depth != 3 {
		t.Errorf("g3 depth = %d", g3.Depth)
	}
	wantNames := []string{"a.example.com", "c.example.com"}
	if strings.Join(g3.Names, ",") != strings.Join(wantNames, ",") {
		t.Errorf("G3 = %v, want %v", g3.Names, wantNames)
	}
	if strings.Join(g3.Labels, ",") != "a,c" {
		t.Errorf("L3 = %v, want [a c]", g3.Labels)
	}
	// G4 = {2.a..., 3.a..., 4.b...}, L4 = {a, b} (labels adjacent to zone).
	g4 := groups[1]
	if len(g4.Names) != 3 {
		t.Errorf("G4 = %v", g4.Names)
	}
	if strings.Join(g4.Labels, ",") != "a,b" {
		t.Errorf("L4 = %v, want [a b] (paper Section V-A1)", g4.Labels)
	}
	// G5 = {i.1.a.example.com}, L5 = {a}.
	g5 := groups[2]
	if len(g5.Names) != 1 || g5.Names[0] != "i.1.a.example.com" {
		t.Errorf("G5 = %v", g5.Names)
	}
	if strings.Join(g5.Labels, ",") != "a" {
		t.Errorf("L5 = %v, want [a]", g5.Labels)
	}
}

func TestDecolorPaperFigure9(t *testing.T) {
	tr := paperTree()
	// Figure 9: decoloring a.example.com and c.example.com.
	if !tr.Decolor("a.example.com") || !tr.Decolor("c.example.com") {
		t.Fatal("Decolor should succeed on black nodes")
	}
	if tr.Decolor("a.example.com") {
		t.Error("second Decolor should report false")
	}
	if tr.Decolor("never-inserted.example.com") {
		t.Error("Decolor of absent node should report false")
	}
	groups := tr.GroupsUnder("example.com")
	if len(groups) != 2 {
		t.Fatalf("groups after decolor = %d, want 2 (G4, G5)", len(groups))
	}
	if groups[0].Depth != 4 || groups[1].Depth != 5 {
		t.Errorf("depths = %d, %d", groups[0].Depth, groups[1].Depth)
	}
	// Descendants of decolored nodes remain.
	if !tr.IsBlack("2.a.example.com") {
		t.Error("descendants must survive decoloring")
	}
	if tr.BlackCount() != 4 {
		t.Errorf("BlackCount = %d, want 4", tr.BlackCount())
	}
}

func TestChildZones(t *testing.T) {
	tr := paperTree()
	got := tr.ChildZones("example.com")
	want := "a.example.com,b.example.com,c.example.com"
	if strings.Join(got, ",") != want {
		t.Errorf("ChildZones = %v, want %s", got, want)
	}
	// After decoloring c (a leaf), c.example.com has no black descendants
	// and is not black itself -> drops out of the recursion set.
	tr.Decolor("c.example.com")
	got = tr.ChildZones("example.com")
	want = "a.example.com,b.example.com"
	if strings.Join(got, ",") != want {
		t.Errorf("ChildZones after decolor = %v, want %s", got, want)
	}
}

func TestHasBlackDescendants(t *testing.T) {
	tr := paperTree()
	if !tr.HasBlackDescendants("example.com") {
		t.Error("example.com should have black descendants")
	}
	if !tr.HasBlackDescendants("a.example.com") {
		t.Error("a.example.com should have black descendants (2,3,i.1)")
	}
	if tr.HasBlackDescendants("c.example.com") {
		t.Error("leaf c.example.com has no descendants")
	}
	if tr.HasBlackDescendants("absent.example.com") {
		t.Error("absent zone should report false")
	}
}

func TestEffective2LDs(t *testing.T) {
	tr := New(nil)
	tr.Insert("a.example.com")
	tr.Insert("b.example.co.uk")
	tr.Insert("x.y.host.no-ip.com")
	got := tr.Effective2LDs()
	want := []string{"example.co.uk", "example.com", "host.no-ip.com"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Effective2LDs = %v, want %v", got, want)
	}
}

func TestNamesUnder(t *testing.T) {
	tr := paperTree()
	got := tr.NamesUnder("a.example.com")
	want := []string{"2.a.example.com", "3.a.example.com", "i.1.a.example.com"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("NamesUnder = %v, want %v", got, want)
	}
	if tr.NamesUnder("absent.zone.test") != nil {
		t.Error("NamesUnder absent zone should be nil")
	}
}

func TestGroupsUnderAbsentZone(t *testing.T) {
	tr := paperTree()
	if got := tr.GroupsUnder("not.present.test"); got != nil {
		t.Errorf("GroupsUnder absent = %v", got)
	}
}

func TestStringDump(t *testing.T) {
	tr := New(nil)
	tr.Insert("a.example.com")
	dump := tr.String()
	for _, want := range []string{"com", "example", "a *"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

// Property: after inserting N distinct names under one zone, the union of
// all groups' Names equals the inserted set, and every group's depth
// exceeds the zone's.
func TestGroupPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		tr := New(nil)
		inserted := make(map[string]struct{})
		for i := 0; i < n; i++ {
			depth := rng.Intn(3) + 1
			labels := make([]string, depth)
			for j := range labels {
				labels[j] = labelgen.Token(rng, rng.Intn(6)+1)
			}
			name := strings.Join(labels, ".") + ".zone.test"
			tr.Insert(name)
			inserted[name] = struct{}{}
		}
		groups := tr.GroupsUnder("zone.test")
		seen := make(map[string]struct{})
		for _, g := range groups {
			if g.Depth <= 2 {
				return false
			}
			for _, name := range g.Names {
				if _, dup := seen[name]; dup {
					return false // groups must partition
				}
				seen[name] = struct{}{}
				if _, ok := inserted[name]; !ok {
					return false
				}
			}
		}
		return len(seen) == len(inserted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: decoloring every name empties all groups.
func TestDecolorAllProperty(t *testing.T) {
	tr := paperTree()
	for _, n := range paperNames {
		tr.Decolor(n)
	}
	if tr.BlackCount() != 0 {
		t.Errorf("BlackCount = %d, want 0", tr.BlackCount())
	}
	if groups := tr.GroupsUnder("example.com"); len(groups) != 0 {
		t.Errorf("groups = %v, want none", groups)
	}
	if tr.HasBlackDescendants("example.com") {
		t.Error("no black descendants should remain")
	}
}
