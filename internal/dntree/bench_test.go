package dntree

import (
	"fmt"
	"math/rand"
	"testing"

	"dnsnoise/internal/labelgen"
)

func benchTree(n int) (*Tree, []string) {
	rng := rand.New(rand.NewSource(5))
	t := New(nil)
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := labelgen.Token(rng, 20) + fmt.Sprintf(".z%d.example.com", i%50)
		t.Insert(name)
		names = append(names, name)
	}
	return t, names
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	t := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Insert(labelgen.Token(rng, 20) + ".avqs.mcafee.com")
	}
}

func BenchmarkGroupsUnder(b *testing.B) {
	t, _ := benchTree(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := t.GroupsUnder("example.com"); len(got) == 0 {
			b.Fatal("no groups")
		}
	}
}
