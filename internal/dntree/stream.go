// Streaming (incremental) tree maintenance. The batch miner builds a
// fresh tree per day from a completed collector; the streaming pipeline
// instead keeps one tree alive and mutates it in place as names arrive:
//
//   - InsertAt stamps each observation with a window ordinal, so the tree
//     knows which sliding window last saw every black node;
//   - ExpireBefore decolors (and prunes) the names whose last observation
//     fell out of the sliding window, touching only the per-window name
//     lists instead of rescanning the whole trie;
//   - Recolor undoes the miner's Decolor after a re-score, so a single
//     tree can be mined every window without a rebuild.
//
// With expiry disabled (the day-equivalence mode), a streaming tree fed
// the same names as a batch BuildTree holds an identical black set, which
// is what pins streaming day-boundary verdicts to the batch miner's.
package dntree

import "dnsnoise/internal/dnsname"

// Window returns the tree's current window ordinal (advanced by
// AdvanceWindow; zero for batch trees).
func (t *Tree) Window() uint32 { return t.window }

// AdvanceWindow moves the tree to the next window ordinal and returns it.
// Not safe for concurrent use with any other tree method.
func (t *Tree) AdvanceWindow() uint32 {
	t.window++
	return t.window
}

// InsertAt is Insert stamped with the tree's current window: the name's
// node becomes (or stays) black and records the window as its last
// observation, feeding the per-window bookkeeping that ExpireBefore uses
// for O(window) decay.
func (t *Tree) InsertAt(name string) {
	name = dnsname.Normalize(name)
	if name == "" {
		return
	}
	n := t.walk(name, true)
	if t.byWindow == nil {
		t.byWindow = make(map[uint32][]string)
		t.windowBlack = make(map[uint32]int)
	}
	if !n.black {
		n.black = true
		t.black++
		if e2ld := t.suffixes.ETLDPlusOne(name); e2ld != "" {
			t.e2lds[e2ld]++
		}
	} else {
		if n.lastSeen == t.window {
			return // already stamped this window
		}
		t.windowBlack[n.lastSeen]--
	}
	n.lastSeen = t.window
	t.windowBlack[t.window]++
	t.byWindow[t.window] = append(t.byWindow[t.window], name)
}

// BlackInWindow returns how many black nodes were last observed in the
// given window ordinal — the per-window node count behind drift and decay
// monitoring.
func (t *Tree) BlackInWindow(w uint32) int { return t.windowBlack[w] }

// Recolor restores a present white node to black and reports whether
// anything changed: the inverse of Decolor, used after a streaming
// re-score so the mined tree survives to the next window. It does not
// touch window stamps or e2ld refcounts (Decolor touched neither).
func (t *Tree) Recolor(name string) bool {
	n := t.walk(dnsname.Normalize(name), false)
	if n == nil || n.black {
		return false
	}
	n.black = true
	t.black++
	return true
}

// ExpireBefore decolors every black node whose last observation precedes
// window `oldest`, prunes the emptied branches, and returns the expired
// names (so callers can drop them from their dedup state). Only the
// per-window name lists are visited. Names re-observed since their listing
// carry a newer stamp and survive.
func (t *Tree) ExpireBefore(oldest uint32) []string {
	var expired []string
	for w, names := range t.byWindow {
		if w >= oldest {
			continue
		}
		for _, name := range names {
			n := t.walk(name, false)
			if n == nil || !n.black || n.lastSeen != w {
				continue // re-observed later, or already gone
			}
			n.black = false
			t.black--
			t.windowBlack[w]--
			if e2ld := t.suffixes.ETLDPlusOne(name); e2ld != "" {
				if t.e2lds[e2ld]--; t.e2lds[e2ld] <= 0 {
					delete(t.e2lds, e2ld)
				}
			}
			t.prune(name)
			expired = append(expired, name)
		}
		delete(t.byWindow, w)
		delete(t.windowBlack, w)
	}
	return expired
}

// prune removes the white, childless tail of name's path, so expired
// branches do not accumulate as dead trie weight.
func (t *Tree) prune(name string) {
	labels := dnsname.Labels(name)
	// Collect the path root -> leaf (path[0] is the root).
	path := make([]*node, 1, len(labels)+1)
	path[0] = t.root
	n := t.root
	for i := len(labels) - 1; i >= 0; i-- {
		child, ok := n.children[labels[i]]
		if !ok {
			return
		}
		path = append(path, child)
		n = child
	}
	// Unwind: drop each white childless node from its parent.
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		if n.black || len(n.children) > 0 {
			return
		}
		delete(path[i-1].children, labels[len(labels)-i])
	}
}

// ResetStream clears every name and all window bookkeeping while keeping
// the suffix ruleset: the day-boundary reset of the streaming pipeline,
// equivalent to allocating a fresh tree but explicit about intent.
func (t *Tree) ResetStream() {
	t.root = &node{children: make(map[string]*node)}
	t.e2lds = make(map[string]int)
	t.black = 0
	t.byWindow = nil
	t.windowBlack = nil
	// The window ordinal keeps counting: hysteresis state outlives days.
}
