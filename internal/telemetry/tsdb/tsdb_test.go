package tsdb

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"dnsnoise/internal/telemetry"
)

var t0 = time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)

// snapAt builds a bare snapshot with the given cumulative counters.
func snapAt(t time.Time, counters map[string]uint64, gauges map[string]float64) *telemetry.Snapshot {
	return &telemetry.Snapshot{Time: t, Counters: counters, Gauges: gauges}
}

func TestRecordAndRateQuery(t *testing.T) {
	db := New(Config{Retain: 16})
	for i := 0; i <= 5; i++ {
		db.Record(snapAt(t0.Add(time.Duration(i)*time.Second), map[string]uint64{
			"udp_rx_packets_total": uint64(100 * i),
		}, map[string]float64{"go_goroutines": float64(10 + i)}))
	}

	// Rate over 1s buckets: every bucket after the first should see 100/s.
	res := db.Query("udp_rx_packets_total", AggRate, Options{
		Start: t0, End: t0.Add(5 * time.Second), Step: time.Second,
	})
	if len(res) != 1 {
		t.Fatalf("got %d series, want 1: %+v", len(res), res)
	}
	if res[0].Kind != "counter" {
		t.Errorf("kind = %q, want counter", res[0].Kind)
	}
	if len(res[0].Points) != 5 {
		t.Fatalf("got %d points, want 5: %+v", len(res[0].Points), res[0].Points)
	}
	for _, p := range res[0].Points {
		if p.V != 100 {
			t.Errorf("rate point %+v, want 100/s", p)
		}
	}

	// The derived serve_qps gauge should carry the same rate.
	res = db.Query("serve_qps", AggAvg, Options{Start: t0, End: t0.Add(5 * time.Second), Step: 5 * time.Second})
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("serve_qps = %+v, want one series with one point", res)
	}
	if got := res[0].Points[0].V; got != 100 {
		t.Errorf("serve_qps avg = %v, want 100", got)
	}

	// Gauge avg over the full window.
	res = db.Query("go_goroutines", AggAvg, Options{Start: t0.Add(-time.Second), End: t0.Add(5 * time.Second), Step: 6 * time.Second})
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("go_goroutines = %+v", res)
	}
	if got := res[0].Points[0].V; got != 12.5 {
		t.Errorf("gauge avg = %v, want 12.5", got)
	}
}

func TestDerivedRatiosAndPopGrouping(t *testing.T) {
	db := New(Config{Retain: 8})
	mk := func(i uint64) map[string]uint64 {
		return map[string]uint64{
			`resolver_cache_hits_total{pop="0"}`:             90 * i,
			`resolver_cache_misses_total{pop="0"}`:           10 * i,
			`resolver_cache_hits_total{pop="1"}`:             50 * i,
			`resolver_cache_misses_total{pop="1"}`:           50 * i,
			`udp_scored_total{verdict="benign",pop="0"}`:     70 * i,
			`udp_scored_total{verdict="disposable",pop="0"}`: 30 * i,
		}
	}
	for i := uint64(1); i <= 3; i++ {
		db.Record(snapAt(t0.Add(time.Duration(i)*time.Second), mk(i), nil))
	}
	opt := Options{Start: t0, End: t0.Add(4 * time.Second), Step: 4 * time.Second}

	res := db.Query("cache_hit_ratio", AggAvg, opt)
	if len(res) != 2 {
		t.Fatalf("cache_hit_ratio series = %+v, want 2 (per pop)", res)
	}
	if res[0].Name != `cache_hit_ratio{pop="0"}` || res[1].Name != `cache_hit_ratio{pop="1"}` {
		t.Fatalf("series names = %q, %q", res[0].Name, res[1].Name)
	}
	if v := res[0].Points[0].V; v != 0.9 {
		t.Errorf("pop0 CHR = %v, want 0.9", v)
	}
	if v := res[1].Points[0].V; v != 0.5 {
		t.Errorf("pop1 CHR = %v, want 0.5", v)
	}

	res = db.Query("verdict_rate", AggAvg, opt)
	if len(res) != 1 || res[0].Name != `verdict_rate{pop="0"}` {
		t.Fatalf("verdict_rate = %+v", res)
	}
	if v := res[0].Points[0].V; v != 0.3 {
		t.Errorf("verdict_rate = %v, want 0.3", v)
	}
}

// TestDerivedNoDataVsZero: a ratio rule emits nothing while the denominator
// is idle, and a genuine zero when the denominator moves without the
// numerator.
func TestDerivedNoDataVsZero(t *testing.T) {
	db := New(Config{Retain: 8, Derived: []DerivedRule{
		{Name: "drop_rate", Num: "dropped", Den: []string{"rx"}},
	}})
	db.Record(snapAt(t0, map[string]uint64{"dropped": 0, "rx": 0}, nil))
	db.Record(snapAt(t0.Add(time.Second), map[string]uint64{"dropped": 0, "rx": 0}, nil))
	db.Record(snapAt(t0.Add(2*time.Second), map[string]uint64{"dropped": 0, "rx": 100}, nil))
	res := db.Query("drop_rate", AggAvg, Options{Start: t0, End: t0.Add(3 * time.Second), Step: time.Second})
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("drop_rate = %+v, want exactly one point (idle sweeps emit no data)", res)
	}
	if res[0].Points[0].V != 0 {
		t.Errorf("drop_rate = %v, want 0", res[0].Points[0].V)
	}
}

func TestHistogramDerivedSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("resolver_latency_ns", "test")
	db := New(Config{Retain: 8})

	h.Observe(1000)
	h.Observe(1000)
	snap := reg.Snapshot()
	snap.Time = t0
	db.Record(snap)

	// Second sweep with no new observations: windowed p99 must drop to 0 so
	// latency alerts can resolve.
	snap = reg.Snapshot()
	snap.Time = t0.Add(time.Second)
	db.Record(snap)

	opt := Options{Start: t0.Add(-time.Second), End: t0.Add(2 * time.Second), Step: time.Second}
	res := db.Query("resolver_latency_ns_p99", AggMax, opt)
	if len(res) != 1 {
		t.Fatalf("p99 series = %+v", res)
	}
	pts := res[0].Points
	if len(pts) != 2 {
		t.Fatalf("p99 points = %+v, want 2", pts)
	}
	if pts[0].V <= 0 {
		t.Errorf("first-window p99 = %v, want > 0", pts[0].V)
	}
	if pts[1].V != 0 {
		t.Errorf("idle-window p99 = %v, want 0", pts[1].V)
	}

	res = db.Query("resolver_latency_ns_count", AggMax, opt)
	if len(res) != 1 || res[0].Kind != "counter" {
		t.Fatalf("_count series = %+v, want one counter", res)
	}
	if last := res[0].Points[len(res[0].Points)-1].V; last != 2 {
		t.Errorf("_count = %v, want 2", last)
	}
}

func TestRingWrap(t *testing.T) {
	db := New(Config{Retain: 4, Derived: []DerivedRule{}})
	for i := 0; i < 10; i++ {
		db.Record(snapAt(t0.Add(time.Duration(i)*time.Second), map[string]uint64{"c": uint64(i)}, nil))
	}
	res := db.Query("c", AggMax, Options{Start: t0.Add(-time.Minute), End: t0.Add(time.Minute), Step: time.Second})
	if len(res) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if len(res[0].Points) != 4 {
		t.Fatalf("points after wrap = %d, want 4 (retain)", len(res[0].Points))
	}
	for i, p := range res[0].Points {
		if want := float64(6 + i); p.V != want {
			t.Errorf("point %d = %v, want %v", i, p.V, want)
		}
	}
	if info := db.Series(); len(info) != 1 || info[0].Samples != 4 {
		t.Errorf("Series() = %+v, want one entry with 4 samples", info)
	}
}

func TestMatchSeries(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"", "anything", true},
		{"serve_qps", "serve_qps", true},
		{"serve_qps", `serve_qps{pop="3"}`, true},
		{"serve_qps", "serve_qps_total", false},
		{`serve_qps{pop="3"}`, `serve_qps{pop="3"}`, true},
		{`serve_qps{pop="3"}`, `serve_qps{pop="4"}`, false},
		{`serve_qps{pop="3"}`, "serve_qps", false},
		{"resolver_*", "resolver_queries_total", true},
		{"resolver_*", `resolver_cache_hits_total{server="0"}`, true},
		{"resolver_*", "udp_rx_packets_total", false},
		{"*_p99", `udp_handle_latency_ns_p99{verdict="benign"}`, true},
		{"*_p99", "udp_handle_latency_ns_p50", false},
	}
	for _, c := range cases {
		if got := MatchSeries(c.pattern, c.name); got != c.want {
			t.Errorf("MatchSeries(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestMonotonicTimestamps(t *testing.T) {
	db := New(Config{Retain: 8, Derived: []DerivedRule{}})
	db.Record(snapAt(t0, map[string]uint64{"c": 1}, nil))
	db.Record(snapAt(t0, map[string]uint64{"c": 2}, nil)) // same wall time
	// Start exactly at t0: the first sample (at t0) is the rate base, the
	// clamped second sample (t0+1ns) falls in the bucket.
	res := db.Query("c", AggRate, Options{Start: t0, End: t0.Add(time.Second), Step: 2 * time.Second})
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("res = %+v", res)
	}
	// The clamped 1ns spacing yields a huge but finite, non-negative rate.
	if v := res[0].Points[0].V; v < 0 {
		t.Errorf("rate = %v, want >= 0", v)
	}
}

func TestHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("udp_rx_packets_total", "test")
	db := New(Config{Retain: 16})
	sw := NewSweeper(db, time.Hour, reg.Snapshot)
	// Spread sweeps across several 10ms query buckets so the rate agg has a
	// base sample before at least one bucket.
	for i := 0; i < 3; i++ {
		c.Add(50)
		sw.Sweep()
		time.Sleep(15 * time.Millisecond)
	}

	// Index listing.
	rec := httptest.NewRecorder()
	db.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tsdb", nil))
	if rec.Code != 200 {
		t.Fatalf("index status = %d", rec.Code)
	}
	var idx struct {
		Retain int          `json:"retain"`
		Sweeps uint64       `json:"sweeps"`
		Series []SeriesInfo `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Retain != 16 || idx.Sweeps != 3 || len(idx.Series) == 0 {
		t.Fatalf("index = %+v", idx)
	}

	// Range query via query params.
	rec = httptest.NewRecorder()
	start := time.Now().Add(-2 * time.Second).Format(time.RFC3339Nano)
	db.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		"/debug/tsdb?series=udp_rx_packets_total&agg=rate&step=10ms&start="+start, nil))
	if rec.Code != 200 {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Agg    string   `json:"agg"`
		Series []Result `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Agg != "rate" || len(out.Series) != 1 || len(out.Series[0].Points) == 0 {
		t.Fatalf("query out = %+v", out)
	}

	// Bad agg is a 400.
	rec = httptest.NewRecorder()
	db.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tsdb?series=x&agg=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad agg status = %d, want 400", rec.Code)
	}
}

// TestFleetMergeBitConsistency: recording a pop-labeled merged snapshot into
// a fleet DB yields, for every pop, exactly the points a single-PoP DB
// records from the unlabeled snapshot — same values, same timestamps.
func TestFleetMergeBitConsistency(t *testing.T) {
	regs := []*telemetry.Registry{telemetry.NewRegistry(), telemetry.NewRegistry()}
	for i, reg := range regs {
		hits := reg.Counter("resolver_cache_hits_total", "t")
		miss := reg.Counter("resolver_cache_misses_total", "t")
		lat := reg.Histogram("resolver_latency_ns", "t")
		hits.Add(uint64(80 + 7*i))
		miss.Add(uint64(20 + 3*i))
		lat.Observe(uint64(1000 * (i + 1)))
	}

	single := []*DB{New(Config{}), New(Config{})}
	fleetDB := New(Config{})
	for sweep := 0; sweep < 3; sweep++ {
		ts := t0.Add(time.Duration(sweep) * time.Second)
		var labeled []*telemetry.Snapshot
		for i, reg := range regs {
			reg.Counter("resolver_cache_hits_total", "t").Add(uint64(10 * (i + 1)))
			snap := reg.Snapshot()
			snap.Time = ts
			single[i].Record(snap)
			labeled = append(labeled, snap.WithLabel("pop", []string{"0", "1"}[i]))
		}
		merged := telemetry.MergeSnapshots(labeled...)
		merged.Time = ts
		fleetDB.Record(merged)
	}

	opt := Options{Start: t0.Add(-time.Second), End: t0.Add(3 * time.Second), Step: time.Second}
	for pop, db := range single {
		popLbl := `{pop="` + []string{"0", "1"}[pop] + `"}`
		for _, info := range db.Series() {
			base, labels := splitName(info.Name)
			if base == "go_goroutines" || base == "go_heap_alloc_bytes" || base == "go_gc_cycles_total" {
				continue // runtime gauges are process-wide, not merged per pop
			}
			fleetName := base + "{"
			if labels != "" {
				fleetName += labels + ","
			}
			fleetName += popLbl[1:]
			want := db.Query(info.Name, AggAvg, opt)
			got := fleetDB.Query(fleetName, AggAvg, opt)
			if len(want) != 1 || len(got) != 1 {
				t.Fatalf("pop %d series %q: single=%d fleet(%q)=%d results",
					pop, info.Name, len(want), fleetName, len(got))
			}
			if !reflect.DeepEqual(want[0].Points, got[0].Points) {
				t.Errorf("pop %d series %q: single %+v != fleet %+v",
					pop, info.Name, want[0].Points, got[0].Points)
			}
		}
	}
}
