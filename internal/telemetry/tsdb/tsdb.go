// Package tsdb is a dependency-free, fixed-memory time-series store for
// telemetry history. A DB ingests Registry snapshots (one call to Record per
// sweep), keeps the last N samples of every series in a per-series ring
// buffer, and synthesizes derived series the point-in-time scrape cannot
// express: per-second rates, ratio gauges (drop rate, cache-hit ratio,
// disposable-verdict share) computed from counter deltas, and windowed
// p50/p99 gauges computed from histogram-snapshot deltas between sweeps.
//
// Memory is bounded up front: retain samples x live series, 16 bytes per
// sample, no reallocation after a series' first appearance. Everything runs
// in the sweep goroutine; the packet/resolve hot path is never touched —
// sweeps read the same scrape-time CounterFunc/shard-sum paths /metrics
// uses.
package tsdb

import (
	"sort"
	"strings"
	"sync"
	"time"

	"dnsnoise/internal/telemetry"
)

// Kind says how a series' samples should be interpreted by aggregation:
// counters are cumulative (rate is meaningful), gauges are instantaneous.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
)

func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// sample is one retained observation. Timestamps are Unix nanoseconds so
// bucket math in Query is integer-only.
type sample struct {
	t int64
	v float64
}

// series is a fixed-capacity ring of samples. next is the slot the next
// append lands in; once full wraps, the ring holds the trailing retain
// samples in circular order.
type series struct {
	kind Kind
	buf  []sample
	next int
	full bool
}

func (s *series) append(t int64, v float64) {
	s.buf[s.next] = sample{t: t, v: v}
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
}

// len reports how many samples the ring currently holds.
func (s *series) len() int {
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// last returns the most recent sample; ok is false on an empty ring.
func (s *series) last() (sample, bool) {
	if s.next == 0 {
		if !s.full {
			return sample{}, false
		}
		return s.buf[len(s.buf)-1], true
	}
	return s.buf[s.next-1], true
}

// ordered appends the ring's samples, oldest first, to dst and returns it.
func (s *series) ordered(dst []sample) []sample {
	if s.full {
		dst = append(dst, s.buf[s.next:]...)
	}
	return append(dst, s.buf[:s.next]...)
}

// Config sizes a DB. The zero value is usable: DefaultRetain samples per
// series and the DefaultDerived rule set.
type Config struct {
	// Retain is the number of samples kept per series (the ring capacity).
	// At a 1s sweep interval the default holds 10 minutes of history.
	Retain int
	// Derived is the set of ratio/rate rules evaluated per sweep. Nil means
	// DefaultDerived(); an empty non-nil slice disables derived series.
	Derived []DerivedRule
}

// DefaultRetain is the per-series ring capacity when Config.Retain is 0.
const DefaultRetain = 600

// DB is the store. All methods are safe for concurrent use; Record is
// expected to be called from a single sweep goroutine but is not required
// to be.
type DB struct {
	mu      sync.Mutex
	retain  int
	derived []DerivedRule

	series map[string]*series
	names  []string // sorted keys of series, for deterministic listings

	// prevHist remembers the previous cumulative histogram snapshot per
	// series so each sweep can compute windowed (delta) percentiles.
	prevHist map[string]telemetry.HistogramSnapshot
	// prevCnt remembers previous counter values for derived-rule deltas.
	prevCnt map[string]float64
	lastT   int64
	sweeps  uint64
}

// New builds a DB from cfg.
func New(cfg Config) *DB {
	retain := cfg.Retain
	if retain <= 0 {
		retain = DefaultRetain
	}
	derived := cfg.Derived
	if derived == nil {
		derived = DefaultDerived()
	}
	return &DB{
		retain:   retain,
		derived:  derived,
		series:   make(map[string]*series),
		prevHist: make(map[string]telemetry.HistogramSnapshot),
		prevCnt:  make(map[string]float64),
	}
}

// Retain reports the per-series ring capacity.
func (db *DB) Retain() int { return db.retain }

// Sweeps reports how many snapshots have been recorded.
func (db *DB) Sweeps() uint64 {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.sweeps
}

// upsert returns the ring for name, creating it (with the DB's retain
// capacity) on first sight. Caller holds db.mu.
func (db *DB) upsert(name string, kind Kind) *series {
	if s, ok := db.series[name]; ok {
		return s
	}
	s := &series{kind: kind, buf: make([]sample, db.retain)}
	db.series[name] = s
	i := sort.SearchStrings(db.names, name)
	db.names = append(db.names, "")
	copy(db.names[i+1:], db.names[i:])
	db.names[i] = name
	return s
}

// Record ingests one Registry snapshot: counters and gauges verbatim,
// histograms as a cumulative <name>_count series plus windowed <name>_p50 /
// <name>_p99 gauges (quantiles of the delta since the previous sweep — zero
// when the window saw no observations, which is what lets latency alerts
// resolve when traffic stops), then the derived ratio/rate series. Nil DB
// and nil snapshot are no-ops. Timestamps are forced monotonic so rate
// denominators can never be zero or negative.
func (db *DB) Record(snap *telemetry.Snapshot) {
	if db == nil || snap == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()

	t := snap.Time.UnixNano()
	if t <= db.lastT {
		t = db.lastT + 1
	}

	// Counter deltas feed the derived rules; grouped by pop label so fleet
	// sweeps yield per-PoP derived series bit-identical to single-PoP ones.
	var deltas []counterDelta
	if len(db.derived) > 0 {
		deltas = make([]counterDelta, 0, len(snap.Counters))
	}

	for _, name := range sortedKeys(snap.Counters) {
		v := float64(snap.Counters[name])
		s := db.upsert(name, KindCounter)
		s.append(t, v)
		if deltas != nil {
			prev, seen := db.prevCnt[name]
			d := v - prev
			if !seen || d < 0 { // first sight or counter reset
				d = v
			}
			base, labels := splitName(name)
			deltas = append(deltas, counterDelta{base: base, labels: labels, delta: d})
		}
		db.prevCnt[name] = v
	}

	for _, name := range sortedKeys(snap.Gauges) {
		db.upsert(name, KindGauge).append(t, snap.Gauges[name])
	}

	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		base, labels := splitName(name)
		db.upsert(base+"_count"+wrapLabels(labels), KindCounter).append(t, float64(h.Count))
		w := h.Delta(db.prevHist[name])
		db.prevHist[name] = h
		db.upsert(base+"_p50"+wrapLabels(labels), KindGauge).append(t, float64(w.P50))
		db.upsert(base+"_p99"+wrapLabels(labels), KindGauge).append(t, float64(w.P99))
	}

	if db.sweeps > 0 && len(deltas) > 0 {
		dt := float64(t-db.lastT) / float64(time.Second)
		db.recordDerived(t, dt, deltas)
	}

	db.lastT = t
	db.sweeps++
}

// counterDelta is one counter's increase since the previous sweep, split
// into base name and label set for derived-rule matching.
type counterDelta struct {
	base   string
	labels string
	delta  float64
}

// recordDerived evaluates every derived rule over the sweep's counter
// deltas, grouping by the pop label (empty for single-process runs) so each
// PoP gets its own derived series. Caller holds db.mu.
func (db *DB) recordDerived(t int64, dtSeconds float64, deltas []counterDelta) {
	type accum struct {
		num, den float64
		denSeen  bool
	}
	for _, rule := range db.derived {
		groups := make(map[string]*accum)
		get := func(pop string) *accum {
			a := groups[pop]
			if a == nil {
				a = &accum{}
				groups[pop] = a
			}
			return a
		}
		for _, d := range deltas {
			pop := labelValue(d.labels, "pop")
			if d.base == rule.Num && rule.matchNumLabels(d.labels) {
				get(pop).num += d.delta
			}
			for _, den := range rule.Den {
				if d.base == den {
					a := get(pop)
					a.den += d.delta
					a.denSeen = true
				}
			}
		}
		for _, pop := range sortedKeys(groups) {
			a := groups[pop]
			name := rule.Name
			if pop != "" {
				name += `{pop="` + pop + `"}`
			}
			var v float64
			if len(rule.Den) == 0 {
				// Pure rate: numerator increase per second.
				v = a.num / dtSeconds
			} else {
				if !a.denSeen || a.den == 0 {
					continue // no activity in the window: no data, not 0
				}
				v = a.num / a.den
			}
			db.upsert(name, KindGauge).append(t, v)
		}
	}
}

// DerivedRule synthesizes a gauge series from counter deltas each sweep.
// With Den empty the result is a per-second rate of Num's increase; with
// Den set it is the ratio of Num's increase to the summed increase of the
// Den counters (a sample is only emitted when the denominator moved).
// Matching is by base metric name, summing across label sets except the
// pop label, which partitions the output into per-PoP series.
type DerivedRule struct {
	// Name is the derived series' base name, e.g. "cache_hit_ratio".
	Name string
	// Num is the numerator counter's base name.
	Num string
	// NumLabels optionally restricts the numerator to series carrying this
	// exact label pair, e.g. `verdict="disposable"`.
	NumLabels string
	// Den is the set of denominator counter base names, summed.
	Den []string
}

func (r DerivedRule) matchNumLabels(labels string) bool {
	if r.NumLabels == "" {
		return true
	}
	return hasLabelPair(labels, r.NumLabels)
}

// DefaultDerived is the rule set every CLI ships with: throughput rates for
// the serve and resolve paths, the serve drop rate, the resolver cache-hit
// ratio, and the disposable-verdict share of scored queries — the paper's
// headline operational signals.
func DefaultDerived() []DerivedRule {
	return []DerivedRule{
		{Name: "serve_qps", Num: "udp_rx_packets_total"},
		{Name: "resolver_qps", Num: "resolver_queries_total"},
		{Name: "serve_drop_rate", Num: "udp_dropped_total", Den: []string{"udp_rx_packets_total"}},
		{Name: "cache_hit_ratio", Num: "resolver_cache_hits_total",
			Den: []string{"resolver_cache_hits_total", "resolver_cache_misses_total"}},
		{Name: "verdict_rate", Num: "udp_scored_total", NumLabels: `verdict="disposable"`,
			Den: []string{"udp_scored_total"}},
	}
}

// splitName separates a series name from its brace-wrapped label set:
// `udp_scored_total{verdict="benign"}` -> ("udp_scored_total",
// `verdict="benign"`). Names without labels return labels == "".
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	labels = name[i+1:]
	labels = strings.TrimSuffix(labels, "}")
	return name[:i], labels
}

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// labelValue extracts the (unquoted) value of key from a label set string,
// or "" when absent. Label values in this codebase never contain commas or
// escaped quotes, but the scan tolerates quoted commas anyway.
func labelValue(labels, key string) string {
	for _, pair := range splitLabelPairs(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k != key {
			continue
		}
		return strings.Trim(v, `"`)
	}
	return ""
}

// hasLabelPair reports whether the label set contains the exact pair, e.g.
// `verdict="disposable"`.
func hasLabelPair(labels, pair string) bool {
	for _, p := range splitLabelPairs(labels) {
		if p == pair {
			return true
		}
	}
	return false
}

// splitLabelPairs splits `a="1",b="2"` on commas outside quotes.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var pairs []string
	start, inQuote := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(pairs, labels[start:])
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
