package tsdb

import (
	"sync"
	"time"

	"dnsnoise/internal/telemetry"
)

// Sweeper periodically snapshots a source and records it into a DB, then
// runs any registered hooks (the alert engine hangs off one). It owns a
// single goroutine; the instrumented hot paths never see it — the snapshot
// source is the same read-time scrape path /metrics uses.
type Sweeper struct {
	db    *DB
	src   func() *telemetry.Snapshot
	every time.Duration
	hooks []func(now time.Time)

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewSweeper builds a sweeper recording src() into db every interval.
// src returning nil skips that sweep.
func NewSweeper(db *DB, every time.Duration, src func() *telemetry.Snapshot) *Sweeper {
	return &Sweeper{db: db, src: src, every: every}
}

// OnSweep registers fn to run (in the sweep goroutine) after each recorded
// sweep. Must be called before Start.
func (s *Sweeper) OnSweep(fn func(now time.Time)) {
	s.hooks = append(s.hooks, fn)
}

// Sweep performs one snapshot+record+hooks cycle synchronously. Tests and
// CLI teardown use it to get a final consistent sample without waiting a
// full interval.
func (s *Sweeper) Sweep() {
	if s == nil {
		return
	}
	snap := s.src()
	if snap == nil {
		return
	}
	if snap.Time.IsZero() {
		snap.Time = time.Now()
	}
	s.db.Record(snap)
	for _, fn := range s.hooks {
		fn(snap.Time)
	}
}

// Start launches the sweep loop. Safe to call once; Stop tears it down.
func (s *Sweeper) Start() {
	if s == nil || s.every <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Sweep()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for the in-flight sweep, then records one
// final sweep so short runs still leave history behind. Idempotent.
func (s *Sweeper) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	close(s.stop)
	done := s.done
	s.mu.Unlock()
	<-done
	s.Sweep()
}
