package tsdb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dnsnoise/internal/telemetry"
)

// naiveSeries is the reference model: a plain append-only log truncated to
// the trailing retain samples — what the ring buffer is supposed to hold.
type naiveSeries struct {
	kind    Kind
	samples []sample
}

func (n *naiveSeries) add(t int64, v float64, retain int) {
	n.samples = append(n.samples, sample{t: t, v: v})
	if len(n.samples) > retain {
		n.samples = n.samples[len(n.samples)-retain:]
	}
}

// naiveAggregate recomputes the documented bucket semantics from scratch:
// bucket b covers (start+b*step, start+(b+1)*step]; avg/max over contained
// samples; rate is (last-in-bucket - last-at-or-before-start) / elapsed
// seconds, clamped at zero; empty buckets (or rate buckets without a base
// sample) emit nothing.
func naiveAggregate(samples []sample, agg Agg, startNs, stepNs int64, nb int) []Point {
	var points []Point
	for b := 0; b < nb; b++ {
		lo := startNs + int64(b)*stepNs
		hi := lo + stepNs
		var in []sample
		var prev *sample
		for i := range samples {
			if samples[i].t <= lo {
				prev = &samples[i]
			} else if samples[i].t <= hi {
				in = append(in, samples[i])
			}
		}
		if len(in) == 0 {
			continue
		}
		var v float64
		switch agg {
		case AggRate:
			if prev == nil {
				continue
			}
			last := in[len(in)-1]
			dt := float64(last.t-prev.t) / float64(time.Second)
			if dt <= 0 {
				continue
			}
			v = (last.v - prev.v) / dt
			if v < 0 {
				v = 0
			}
		case AggMax:
			v = in[0].v
			for _, s := range in[1:] {
				if s.v > v {
					v = s.v
				}
			}
		default:
			var sum float64
			for _, s := range in {
				sum += s.v
			}
			v = sum / float64(len(in))
		}
		points = append(points, Point{T: hi / int64(time.Millisecond), V: v})
	}
	return points
}

// TestQueryMatchesNaiveReference drives a small-retain DB through hundreds
// of sweeps (forcing many ring wrap-arounds) with randomized counter and
// gauge series, then checks hundreds of randomized range queries against
// the naive reference model, for every aggregation.
func TestQueryMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20111201))
	const retain = 17 // deliberately odd and small: wraps constantly

	db := New(Config{Retain: retain, Derived: []DerivedRule{}})
	names := []string{"a_total", `a_total{server="1"}`, "b_total", "g_gauge", `g_gauge{pop="2"}`}
	kinds := []Kind{KindCounter, KindCounter, KindCounter, KindGauge, KindGauge}
	ref := make(map[string]*naiveSeries)
	for i, n := range names {
		ref[n] = &naiveSeries{kind: kinds[i]}
	}

	counters := map[string]uint64{names[0]: 0, names[1]: 0, names[2]: 0}
	now := t0
	var minT, maxT time.Time
	for sweep := 0; sweep < 300; sweep++ {
		now = now.Add(time.Duration(200+rng.Intn(1800)) * time.Millisecond)
		if minT.IsZero() {
			minT = now
		}
		maxT = now
		for n := range counters {
			counters[n] += uint64(rng.Intn(500))
		}
		gauges := map[string]float64{
			names[3]: rng.Float64() * 100,
			names[4]: rng.NormFloat64() * 10,
		}
		cCopy := make(map[string]uint64, len(counters))
		for n, v := range counters {
			cCopy[n] = v
		}
		db.Record(&telemetry.Snapshot{Time: now, Counters: cCopy, Gauges: gauges})
		ts := now.UnixNano()
		for n, v := range cCopy {
			ref[n].add(ts, float64(v), retain)
		}
		for n, v := range gauges {
			ref[n].add(ts, v, retain)
		}
	}

	aggs := []Agg{AggAvg, AggMax, AggRate}
	for q := 0; q < 400; q++ {
		agg := aggs[rng.Intn(len(aggs))]
		// Random window. The ring only retains the trailing ~retain sweeps,
		// so bias most windows into that tail (plus edges past maxT); keep a
		// minority probing the evicted head and beyond, which must be empty.
		var start time.Time
		if rng.Intn(4) > 0 {
			start = maxT.Add(-time.Duration(rng.Int63n(int64(45 * time.Second))))
		} else {
			span := maxT.Sub(minT)
			start = minT.Add(time.Duration(rng.Int63n(int64(span)+1)) - span/4)
		}
		end := start.Add(time.Duration(1 + rng.Int63n(int64(60*time.Second))))
		step := time.Duration(100+rng.Intn(5000)) * time.Millisecond
		pattern := names[rng.Intn(len(names))]
		if rng.Intn(4) == 0 {
			pattern = "*_total"
		}

		got := db.Query(pattern, agg, Options{Start: start, End: end, Step: step})

		// Rebuild the expectation with the same bucket layout Query uses.
		startNs, stepNs := start.UnixNano(), step.Nanoseconds()
		nb := int((end.UnixNano() - startNs + stepNs - 1) / stepNs)
		var want []Result
		for _, n := range sortedKeys(ref) {
			if !MatchSeries(pattern, n) {
				continue
			}
			pts := naiveAggregate(ref[n].samples, agg, startNs, stepNs, nb)
			if len(pts) == 0 {
				continue
			}
			want = append(want, Result{Name: n, Kind: ref[n].kind.String(), Points: pts})
		}

		desc := fmt.Sprintf("query %d: pattern=%q agg=%v start=%v end=%v step=%v",
			q, pattern, agg, start, end, step)
		if len(got) != len(want) {
			t.Fatalf("%s: got %d series, want %d\ngot: %+v\nwant: %+v", desc, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i].Name != want[i].Name || got[i].Kind != want[i].Kind {
				t.Fatalf("%s: series %d = %s/%s, want %s/%s", desc, i, got[i].Name, got[i].Kind, want[i].Name, want[i].Kind)
			}
			if len(got[i].Points) != len(want[i].Points) {
				t.Fatalf("%s: series %s: %d points, want %d\ngot: %+v\nwant: %+v",
					desc, got[i].Name, len(got[i].Points), len(want[i].Points), got[i].Points, want[i].Points)
			}
			for j := range got[i].Points {
				if got[i].Points[j] != want[i].Points[j] {
					t.Fatalf("%s: series %s point %d = %+v, want %+v",
						desc, got[i].Name, j, got[i].Points[j], want[i].Points[j])
				}
			}
		}
	}
}
