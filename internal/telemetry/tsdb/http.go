package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Handler serves the range-query API, mounted at /debug/tsdb (and
// /fleet/tsdb on the fleet control plane).
//
//	GET /debug/tsdb                       -> series index
//	GET /debug/tsdb?series=PAT&agg=rate   -> aggregated points
//	    &start=..&end=..&step=..          (RFC3339 or unix seconds; step is
//	                                       a Go duration or seconds)
func (db *DB) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if db == nil {
			http.Error(w, "tsdb disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		q := r.URL.Query()
		pattern := q.Get("series")
		if pattern == "" {
			json.NewEncoder(w).Encode(struct {
				Retain int          `json:"retain"`
				Sweeps uint64       `json:"sweeps"`
				Series []SeriesInfo `json:"series"`
			}{db.Retain(), db.Sweeps(), db.Series()})
			return
		}
		agg, err := ParseAgg(q.Get("agg"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var opt Options
		if opt.Start, err = parseQueryTime(q.Get("start")); err != nil {
			http.Error(w, "bad start: "+err.Error(), http.StatusBadRequest)
			return
		}
		if opt.End, err = parseQueryTime(q.Get("end")); err != nil {
			http.Error(w, "bad end: "+err.Error(), http.StatusBadRequest)
			return
		}
		if opt.Step, err = parseQueryDuration(q.Get("step")); err != nil {
			http.Error(w, "bad step: "+err.Error(), http.StatusBadRequest)
			return
		}
		results := db.Query(pattern, agg, opt)
		if results == nil {
			results = []Result{}
		}
		json.NewEncoder(w).Encode(struct {
			Agg    string   `json:"agg"`
			Series []Result `json:"series"`
		}{agg.String(), results})
	})
}

// parseQueryTime accepts RFC3339(Nano) timestamps or Unix seconds (integer
// or fractional). Empty means unset.
func parseQueryTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	sec, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return time.Time{}, fmt.Errorf("want RFC3339 or unix seconds, got %q", s)
	}
	return time.Unix(0, int64(sec*float64(time.Second))), nil
}

// parseQueryDuration accepts Go durations ("15s") or plain seconds ("15").
// Empty means unset.
func parseQueryDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d, nil
	}
	sec, err := strconv.ParseFloat(s, 64)
	if err != nil || sec < 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return 0, fmt.Errorf("want duration or seconds, got %q", s)
	}
	return time.Duration(sec * float64(time.Second)), nil
}
