package tsdb

import (
	"fmt"
	"strings"
	"time"
)

// Agg selects how samples inside a query bucket collapse to one point.
type Agg uint8

const (
	// AggAvg is the mean of the bucket's samples (the default).
	AggAvg Agg = iota
	// AggMax is the maximum of the bucket's samples.
	AggMax
	// AggRate is the per-second increase across the bucket: the bucket's
	// last sample minus the last sample at-or-before the bucket's start,
	// divided by the elapsed seconds between those two samples, clamped at
	// zero on counter resets. Buckets without both endpoints emit no point.
	AggRate
)

func (a Agg) String() string {
	switch a {
	case AggMax:
		return "max"
	case AggRate:
		return "rate"
	default:
		return "avg"
	}
}

// ParseAgg maps "avg" (or ""), "max", and "rate" to an Agg.
func ParseAgg(s string) (Agg, error) {
	switch s {
	case "", "avg":
		return AggAvg, nil
	case "max":
		return AggMax, nil
	case "rate":
		return AggRate, nil
	}
	return AggAvg, fmt.Errorf("tsdb: unknown agg %q (want rate|avg|max)", s)
}

// Options bounds a range query. Zero End means now, zero Start means
// End-DefaultQueryWindow, Step<=0 divides the range into DefaultQuerySteps
// buckets. Buckets are half-open on the left: a point at bucket end e
// aggregates samples with start < t <= e.
type Options struct {
	Start time.Time
	End   time.Time
	Step  time.Duration
}

// DefaultQueryWindow is the look-back when a query gives no start time.
const DefaultQueryWindow = 5 * time.Minute

// DefaultQuerySteps is the bucket count when a query gives no step.
const DefaultQuerySteps = 60

// maxQuerySteps caps bucket counts so a tiny step over a huge range cannot
// allocate unboundedly; the step is widened to fit.
const maxQuerySteps = 2000

// Point is one aggregated output sample. T is Unix milliseconds (the bucket
// end), matching what the dashboard and JSON consumers want.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Result is one matched series' aggregated points.
type Result struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// SeriesInfo describes one live series for index listings.
type SeriesInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Samples int    `json:"samples"`
}

// Series lists every live series, sorted by name.
func (db *DB) Series() []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]SeriesInfo, 0, len(db.names))
	for _, name := range db.names {
		s := db.series[name]
		out = append(out, SeriesInfo{Name: name, Kind: s.kind.String(), Samples: s.len()})
	}
	return out
}

// MatchSeries reports whether a query pattern selects a series name.
// Three forms, in order of specificity:
//   - pattern containing '*': glob over the full name (and over the base
//     name, so "resolver_*" matches labeled series too);
//   - pattern containing '{': exact full-name match;
//   - bare pattern: base-name match, ignoring labels — this is what makes
//     one alert rule portable between a single-PoP process ("serve_qps")
//     and a fleet (`serve_qps{pop="3"}` for every PoP).
//
// An empty pattern matches everything.
func MatchSeries(pattern, name string) bool {
	if pattern == "" {
		return true
	}
	if strings.ContainsRune(pattern, '*') {
		if globMatch(pattern, name) {
			return true
		}
		base, _ := splitName(name)
		return globMatch(pattern, base)
	}
	if strings.ContainsRune(pattern, '{') {
		return pattern == name
	}
	base, _ := splitName(name)
	return pattern == base
}

// globMatch is a minimal '*'-only glob (no character classes).
func globMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		i := strings.Index(s, part)
		if i < 0 {
			return false
		}
		s = s[i+len(part):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// Query aggregates every series matching pattern over the option range.
// Results come back sorted by series name; series with no points in range
// are omitted.
func (db *DB) Query(pattern string, agg Agg, opt Options) []Result {
	if db == nil {
		return nil
	}
	end := opt.End
	if end.IsZero() {
		end = time.Now()
	}
	start := opt.Start
	if start.IsZero() {
		start = end.Add(-DefaultQueryWindow)
	}
	if !end.After(start) {
		return nil
	}
	step := opt.Step
	if step <= 0 {
		step = end.Sub(start) / DefaultQuerySteps
	}
	if step < time.Millisecond {
		step = time.Millisecond
	}
	if n := end.Sub(start) / step; n > maxQuerySteps {
		step = end.Sub(start) / maxQuerySteps
	}
	startNs, stepNs := start.UnixNano(), step.Nanoseconds()
	nb := int((end.UnixNano() - startNs + stepNs - 1) / stepNs)

	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Result
	var scratch []sample
	for _, name := range db.names {
		if !MatchSeries(pattern, name) {
			continue
		}
		s := db.series[name]
		scratch = s.ordered(scratch[:0])
		points := aggregate(scratch, agg, startNs, stepNs, nb)
		if len(points) == 0 {
			continue
		}
		out = append(out, Result{Name: name, Kind: s.kind.String(), Points: points})
	}
	return out
}

// aggregate collapses time-ordered samples into nb buckets of stepNs width
// starting at startNs. Bucket b covers (startNs+b*step, startNs+(b+1)*step]
// and its point is stamped at the bucket end. Empty buckets emit nothing.
func aggregate(samples []sample, agg Agg, startNs, stepNs int64, nb int) []Point {
	if agg == AggRate {
		return aggregateRate(samples, startNs, stepNs, nb)
	}
	var points []Point
	i := 0
	for b := 0; b < nb; b++ {
		lo := startNs + int64(b)*stepNs
		hi := lo + stepNs
		for i < len(samples) && samples[i].t <= lo {
			i++
		}
		first := i
		for i < len(samples) && samples[i].t <= hi {
			i++
		}
		in := samples[first:i]
		if len(in) == 0 {
			continue
		}
		var v float64
		if agg == AggMax {
			v = in[0].v
			for _, smp := range in[1:] {
				if smp.v > v {
					v = smp.v
				}
			}
		} else { // AggAvg
			var sum float64
			for _, smp := range in {
				sum += smp.v
			}
			v = sum / float64(len(in))
		}
		points = append(points, Point{T: hi / int64(time.Millisecond), V: v})
	}
	return points
}

// aggregateRate handles AggRate separately: it needs the last sample
// at-or-before each bucket start as the delta base.
func aggregateRate(samples []sample, startNs, stepNs int64, nb int) []Point {
	var points []Point
	i := 0
	havePrev := false
	var prev sample
	for b := 0; b < nb; b++ {
		lo := startNs + int64(b)*stepNs
		hi := lo + stepNs
		for i < len(samples) && samples[i].t <= lo {
			prev = samples[i]
			havePrev = true
			i++
		}
		first := i
		for i < len(samples) && samples[i].t <= hi {
			i++
		}
		in := samples[first:i]
		if len(in) == 0 {
			continue
		}
		last := in[len(in)-1]
		if havePrev {
			if dt := float64(last.t-prev.t) / float64(time.Second); dt > 0 {
				d := last.v - prev.v
				if d < 0 {
					d = 0 // counter reset
				}
				points = append(points, Point{T: hi / int64(time.Millisecond), V: d / dt})
			}
		}
		// The bucket's last sample is at-or-before the next bucket's start:
		// it becomes that bucket's rate base.
		prev = last
		havePrev = true
	}
	return points
}
