package tsdb_test

import (
	"testing"
	"time"

	"dnsnoise/internal/authority"
	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/resolver"
	"dnsnoise/internal/telemetry"
	"dnsnoise/internal/telemetry/tsdb"
)

// TestResolvePathZeroAllocWithTsdb proves the tentpole's cost contract: a
// fully wired tsdb (registry-instrumented cluster, DB, sweeps recording
// history) adds zero allocations to the cache-hit resolve path. All tsdb
// work happens inside Record/Sweep — here invoked between measurement runs
// because testing.AllocsPerRun counts process-wide mallocs, so the sweep's
// own (permitted) allocations must not pollute the hot-path measurement.
func TestResolvePathZeroAllocWithTsdb(t *testing.T) {
	up := authority.NewServer()
	z, err := authority.NewZone("alloc.test", authority.WithSynth(
		func(name string, qtype dnsmsg.Type) ([]dnsmsg.RR, bool) {
			return []dnsmsg.RR{{Name: name, Type: qtype, Class: dnsmsg.ClassIN, TTL: 3600, RData: "198.18.0.1"}}, true
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := up.AddZone(z); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c, err := resolver.NewCluster(up, resolver.WithServers(2), resolver.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}

	db := tsdb.New(tsdb.Config{Retain: 64})
	sw := tsdb.NewSweeper(db, time.Hour, reg.Snapshot)

	t0 := time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)
	q := resolver.Query{Time: t0, ClientID: 7, Name: "host1.alloc.test", Type: dnsmsg.TypeA}
	if _, err := c.Resolve(q); err != nil { // warm: miss fills the cache
		t.Fatal(err)
	}
	q.Time = t0.Add(time.Second)

	for round := 0; round < 3; round++ {
		sw.Sweep() // history accrues between rounds, never during them
		allocs := testing.AllocsPerRun(200, func() {
			resp, err := c.Resolve(q)
			if err != nil || !resp.FromCache {
				t.Fatal("expected cache hit", err)
			}
		})
		if allocs != 0 {
			t.Fatalf("round %d: cache-hit Resolve allocated %.1f times per op with tsdb attached, want 0", round, allocs)
		}
	}
	if db.Sweeps() != 3 {
		t.Fatalf("sweeps = %d, want 3", db.Sweeps())
	}
	if res := db.Query("resolver_queries_total", tsdb.AggMax, tsdb.Options{
		Start: time.Now().Add(-time.Minute), End: time.Now().Add(time.Minute), Step: 2 * time.Minute,
	}); len(res) == 0 {
		t.Fatal("no resolver_queries_total history recorded")
	}
}
