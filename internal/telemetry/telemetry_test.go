package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"dnsnoise/internal/stats"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.CounterFunc("x", "", nil)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var tr *Tracer
	sp := tr.Start("x")
	sp.AddItems(1)
	sp.End()
	if tr.Roots() != nil {
		t.Fatal("nil tracer should have no roots")
	}
}

func TestCounterConcurrentHammer(t *testing.T) {
	const workers, perWorker = 16, 10_000
	var c Counter
	var g Gauge
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		lo, hi uint64
	}{
		{0, 0, 1},
		{1, 1, 2},
		{2, 2, 4},
		{3, 2, 4},
		{4, 4, 8},
		{1023, 512, 1024},
		{1024, 1024, 2048},
		{1 << 62, 1 << 62, 1 << 63},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.v)
		s := h.Snapshot()
		if len(s.Buckets) != 1 {
			t.Fatalf("Observe(%d): %d buckets, want 1", tc.v, len(s.Buckets))
		}
		b := s.Buckets[0]
		if b.Lo != tc.lo || b.Hi != tc.hi || b.Count != 1 {
			t.Fatalf("Observe(%d) landed in [%d,%d) count %d, want [%d,%d) count 1",
				tc.v, b.Lo, b.Hi, b.Count, tc.lo, tc.hi)
		}
	}
}

// TestHistogramQuantileAccuracy checks the power-of-two-bucket quantile
// estimate against the exact stats.Quantile over the same sample: the
// estimate must stay within one bucket (a factor of two) of the truth.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	sample := make([]float64, 0, 20_000)
	for i := 0; i < 20_000; i++ {
		// Long-tailed values spanning several decades, like latencies.
		v := uint64(math.Exp(rng.Float64()*12)) + 1
		h.Observe(v)
		sample = append(sample, float64(v))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact, err := stats.Quantile(sample, q)
		if err != nil {
			t.Fatal(err)
		}
		est := h.Quantile(q)
		if est < exact/2 || est > exact*2 {
			t.Fatalf("q=%v: estimate %v not within a factor of 2 of exact %v", q, est, exact)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "test counter")
	h := r.Histogram("lat_ns", "test histogram")
	c.Add(5)
	h.Observe(10)
	h.Observe(100)
	_, d1 := r.DeltaSnapshot()
	if d1.Counter("events_total") != 5 {
		t.Fatalf("first delta counter = %d, want 5", d1.Counter("events_total"))
	}
	if d1.Histograms["lat_ns"].Count != 2 {
		t.Fatalf("first delta hist count = %d, want 2", d1.Histograms["lat_ns"].Count)
	}

	c.Add(3)
	h.Observe(10)
	cur, d2 := r.DeltaSnapshot()
	if cur.Counter("events_total") != 8 {
		t.Fatalf("cumulative counter = %d, want 8", cur.Counter("events_total"))
	}
	if d2.Counter("events_total") != 3 {
		t.Fatalf("second delta counter = %d, want 3", d2.Counter("events_total"))
	}
	hd := d2.Histograms["lat_ns"]
	if hd.Count != 1 || hd.Sum != 10 {
		t.Fatalf("second delta hist = count %d sum %d, want 1/10", hd.Count, hd.Sum)
	}
	if len(hd.Buckets) != 1 || hd.Buckets[0].Lo != 8 {
		t.Fatalf("second delta buckets = %+v, want one bucket at lo=8", hd.Buckets)
	}
}

func TestRegistryFuncsAndReuse(t *testing.T) {
	r := NewRegistry()
	v := uint64(41)
	r.CounterFunc("fn_total", "", func() uint64 { return v })
	r.GaugeFunc("fn_gauge", "", func() float64 { return 2.5 })
	var sh1, sh2 Histogram
	sh1.Observe(4)
	sh2.Observe(4)
	r.HistogramFunc("fn_hist", "", func() HistogramSnapshot {
		return SnapshotHistograms(&sh1, &sh2)
	})
	s := r.Snapshot()
	if s.Counter("fn_total") != 41 {
		t.Fatalf("counter func = %d, want 41", s.Counter("fn_total"))
	}
	if s.Gauges["fn_gauge"] != 2.5 {
		t.Fatalf("gauge func = %v, want 2.5", s.Gauges["fn_gauge"])
	}
	if hs := s.Histograms["fn_hist"]; hs.Count != 2 || hs.Buckets[0].Count != 2 {
		t.Fatalf("merged hist = %+v, want count 2 in one bucket", hs)
	}
	// Same name returns the same instrument.
	c := r.Counter("dup_total", "")
	c.Add(2)
	r.Counter("dup_total", "").Add(3)
	if c.Value() != 5 {
		t.Fatalf("re-registered counter = %d, want 5", c.Value())
	}
	// Kind mismatch panics.
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	day := tr.Start("2011-12-01")
	prep := tr.Start("prepare")
	prep.End()
	res := tr.Start("resolve")
	res.AddItems(1000)
	res.End()
	day.End()
	other := tr.Start("mine")
	other.AddItems(7)
	other.End()

	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("%d roots, want 2", len(roots))
	}
	d := roots[0]
	if d.Name != "2011-12-01" || len(d.Children) != 2 {
		t.Fatalf("day span = %q with %d children, want 2", d.Name, len(d.Children))
	}
	if d.Children[0].Name != "prepare" || d.Children[1].Name != "resolve" {
		t.Fatalf("children = %q, %q", d.Children[0].Name, d.Children[1].Name)
	}
	if d.Children[1].Items != 1000 {
		t.Fatalf("resolve items = %d, want 1000", d.Children[1].Items)
	}
	if d.Running || d.Children[0].Running {
		t.Fatal("ended spans must not report running")
	}
	if roots[1].Name != "mine" || roots[1].Items != 7 {
		t.Fatalf("second root = %+v", roots[1])
	}
	if d.DurationSeconds < 0 || d.DurationSeconds < d.Children[1].DurationSeconds {
		t.Fatalf("day duration %v should cover child %v", d.DurationSeconds, d.Children[1].DurationSeconds)
	}
}

func TestSpanStartRootConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.StartRoot("exp")
			sp.AddItems(1)
			sp.End()
		}()
	}
	wg.Wait()
	roots := tr.Roots()
	if len(roots) != 8 {
		t.Fatalf("%d roots, want 8", len(roots))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "Events processed.").Add(12)
	r.Counter(`app_shard_total{server="0"}`, "Per-shard events.").Add(3)
	r.Counter(`app_shard_total{server="1"}`, "Per-shard events.").Add(4)
	r.Gauge("app_depth", "").Set(1.5)
	r.Histogram("app_lat_ns", "").Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE app_events_total counter",
		"app_events_total 12",
		`app_shard_total{server="0"} 3`,
		`app_shard_total{server="1"} 4`,
		"# TYPE app_depth gauge",
		"app_depth 1.5",
		"# TYPE app_lat_ns histogram",
		`app_lat_ns_bucket{le="8"} 1`,
		`app_lat_ns_bucket{le="+Inf"} 1`,
		"app_lat_ns_sum 5",
		"app_lat_ns_count 1",
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE app_shard_total") != 1 {
		t.Fatal("labeled series must share one TYPE header")
	}
}
