package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// RuntimeStats captures the Go runtime's end-of-run vitals.
type RuntimeStats struct {
	GoVersion    string  `json:"go_version"`
	GOOS         string  `json:"goos"`
	GOARCH       string  `json:"goarch"`
	NumCPU       int     `json:"num_cpu"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Goroutines   int     `json:"goroutines"`
	HeapBytes    uint64  `json:"heap_bytes"`
	TotalAlloc   uint64  `json:"total_alloc_bytes"`
	GCCycles     uint32  `json:"gc_cycles"`
	GCPauseTotal float64 `json:"gc_pause_total_seconds"`
}

// ReadRuntimeStats samples the runtime now.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Goroutines:   runtime.NumGoroutine(),
		HeapBytes:    ms.HeapAlloc,
		TotalAlloc:   ms.TotalAlloc,
		GCCycles:     ms.NumGC,
		GCPauseTotal: time.Duration(ms.PauseTotalNs).Seconds(),
	}
}

// RunReport is the machine-readable end-of-run record: the final metric
// snapshot, the span tree of every timed stage, and the runtime state —
// one schema shared by the CLIs' -report flag and the bench harness, so
// successive runs compare field-for-field.
type RunReport struct {
	Command         string       `json:"command"`
	Args            []string     `json:"args,omitempty"`
	Start           time.Time    `json:"start"`
	End             time.Time    `json:"end"`
	DurationSeconds float64      `json:"duration_seconds"`
	Metrics         *Snapshot    `json:"metrics,omitempty"`
	Spans           []*SpanNode  `json:"spans,omitempty"`
	Runtime         RuntimeStats `json:"runtime"`
}

// NewRunReport starts a report's clock. Call Finish when the run ends.
func NewRunReport(command string, args []string) *RunReport {
	return &RunReport{Command: command, Args: args, Start: time.Now()}
}

// Finish stamps the end time and folds in the registry's final snapshot
// and the tracer's span tree (either may be nil).
func (rep *RunReport) Finish(r *Registry, t *Tracer) *RunReport {
	rep.End = time.Now()
	rep.DurationSeconds = rep.End.Sub(rep.Start).Seconds()
	rep.Metrics = r.Snapshot()
	rep.Spans = t.Roots()
	rep.Runtime = ReadRuntimeStats()
	return rep
}

// WriteFile serializes the report as indented JSON to path ("-" for
// stdout).
func (rep *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encode report: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: write report: %w", err)
	}
	return nil
}
