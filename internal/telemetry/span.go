package telemetry

import (
	"sync"
	"time"
)

// Tracer records a tree of timing spans over named pipeline stages
// (per-day: generate → resolve → collect → classify). Start opens a
// span as a child of the innermost still-open span on the tracer's
// stack; StartRoot opens a top-level span regardless of the stack (for
// concurrent stages, which must not share the stack). A nil *Tracer
// ignores everything, so instrumented code passes tracers around
// unconditionally.
//
// The stack-based Start/End discipline assumes a single driving
// goroutine — exactly the runner's day loop. StartRoot and every Span
// method are safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time // test seam
	roots []*Span
	stack []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{now: time.Now}
}

// Span is one timed stage. End it exactly once; AddItems accumulates a
// work-unit count (queries resolved, rows appended) reported next to
// the wall time.
type Span struct {
	tr       *Tracer
	name     string
	start    time.Time
	mu       sync.Mutex
	dur      time.Duration
	items    int64
	ended    bool
	children []*Span
}

// Start opens a span nested under the innermost open span (or at the
// root) and pushes it on the tracer's stack.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: t.now()}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.mu.Lock()
		parent.children = append(parent.children, sp)
		parent.mu.Unlock()
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// StartRoot opens a top-level span without touching the nesting stack,
// so concurrent stages can each own one. End on such a span only stops
// its clock.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: t.now()}
	t.roots = append(t.roots, sp)
	return sp
}

// AddItems adds n to the span's processed-item count.
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.items += n
	s.mu.Unlock()
}

// End stops the span's clock and pops any ended spans off the tracer's
// stack. Ending an already-ended span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	now := t.now()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = now.Sub(s.start)
	}
	s.mu.Unlock()
	// Pop every trailing ended span: children ended out of order keep
	// the stack consistent once their ancestors end.
	for n := len(t.stack); n > 0; n-- {
		top := t.stack[n-1]
		top.mu.Lock()
		ended := top.ended
		top.mu.Unlock()
		if !ended {
			break
		}
		t.stack = t.stack[:n-1]
	}
	t.mu.Unlock()
}

// SpanNode is the exported form of a span tree, as serialized into run
// reports.
type SpanNode struct {
	Name            string      `json:"name"`
	Start           time.Time   `json:"start"`
	DurationSeconds float64     `json:"duration_seconds"`
	Items           int64       `json:"items,omitempty"`
	Running         bool        `json:"running,omitempty"`
	Children        []*SpanNode `json:"children,omitempty"`
}

// Roots snapshots the tracer's span forest. Spans still open report
// their duration so far and Running=true. A nil tracer yields nil.
func (t *Tracer) Roots() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]*SpanNode, 0, len(t.roots))
	for _, sp := range t.roots {
		out = append(out, sp.node(now))
	}
	return out
}

func (s *Span) node(now time.Time) *SpanNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := &SpanNode{
		Name:            s.name,
		Start:           s.start,
		DurationSeconds: s.dur.Seconds(),
		Items:           s.items,
	}
	if !s.ended {
		n.Running = true
		n.DurationSeconds = now.Sub(s.start).Seconds()
	}
	for _, child := range s.children {
		n.Children = append(n.Children, child.node(now))
	}
	return n
}
