package telemetry

import (
	"strings"
	"testing"
	"time"

	"dnsnoise/internal/telemetry/promtext"
)

// TestHistogramSnapshotMerge checks that merging two snapshots is
// bucket-exact: equivalent to observing both value streams into one
// histogram.
func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b, both Histogram
	for v := uint64(0); v < 2000; v += 7 {
		a.Observe(v)
		both.Observe(v)
	}
	for v := uint64(1); v < 1<<30; v <<= 2 {
		b.Observe(v)
		both.Observe(v)
	}
	got := a.Snapshot().Merge(b.Snapshot())
	want := both.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", got.Count, got.Sum, want.Count, want.Sum)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets = %v, want %v", got.Buckets, want.Buckets)
	}
	for i := range got.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
	if got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
		t.Fatalf("merged quantiles %v/%v/%v, want %v/%v/%v",
			got.P50, got.P95, got.P99, want.P50, want.P95, want.P99)
	}
	// Merging with an empty snapshot is the identity.
	var empty HistogramSnapshot
	id := want.Merge(empty)
	if id.Count != want.Count || len(id.Buckets) != len(want.Buckets) {
		t.Fatalf("identity merge changed snapshot: %+v vs %+v", id, want)
	}
}

// TestSnapshotWithLabelAndMerge relabels two registry snapshots with
// pop ids, merges them, and checks both the per-pop series and the
// additive collision semantics.
func TestSnapshotWithLabelAndMerge(t *testing.T) {
	r0, r1 := NewRegistry(), NewRegistry()
	r0.Counter("ingest_queries_total", "").Add(10)
	r1.Counter("ingest_queries_total", "").Add(32)
	r0.Counter(`resolver_shard_total{server="0"}`, "").Add(5)
	r1.Counter(`resolver_shard_total{server="0"}`, "").Add(6)
	r0.Histogram("resolve_ns", "").Observe(100)
	r1.Histogram("resolve_ns", "").Observe(1000)

	s0 := r0.Snapshot().WithLabel("pop", "0")
	s1 := r1.Snapshot().WithLabel("pop", "1")
	if _, ok := s0.Counters[`ingest_queries_total{pop="0"}`]; !ok {
		t.Fatalf("relabel missing pop label: %v", s0.Counters)
	}
	if _, ok := s0.Counters[`resolver_shard_total{server="0",pop="0"}`]; !ok {
		t.Fatalf("relabel dropped existing labels: %v", s0.Counters)
	}

	m := MergeSnapshots(s0, s1)
	if got := m.Counters[`ingest_queries_total{pop="0"}`]; got != 10 {
		t.Errorf("pop 0 counter = %d, want 10", got)
	}
	if got := m.Counters[`ingest_queries_total{pop="1"}`]; got != 32 {
		t.Errorf("pop 1 counter = %d, want 32", got)
	}
	if got := m.Histograms[`resolve_ns{pop="0"}`].Count; got != 1 {
		t.Errorf("pop 0 histogram count = %d, want 1", got)
	}

	// Without relabeling, same-name series combine additively.
	flat := MergeSnapshots(r0.Snapshot(), r1.Snapshot())
	if got := flat.Counters["ingest_queries_total"]; got != 42 {
		t.Errorf("flat merge counter = %d, want 42", got)
	}
	if got := flat.Histograms["resolve_ns"].Count; got != 2 {
		t.Errorf("flat merge histogram count = %d, want 2", got)
	}

	later := time.Now().Add(time.Hour)
	a := &Snapshot{Time: later}
	if got := MergeSnapshots(m, a).Time; !got.Equal(later) {
		t.Errorf("merged time = %v, want latest %v", got, later)
	}
}

// TestSnapshotWritePrometheusStrict renders a merged multi-pop snapshot
// and runs it through the strict exposition parser.
func TestSnapshotWritePrometheusStrict(t *testing.T) {
	var snaps []*Snapshot
	for pop := 0; pop < 3; pop++ {
		r := NewRegistry()
		r.Counter("ingest_queries_total", "").Add(uint64(100 * (pop + 1)))
		r.Gauge("pdns_store_bytes", "").Set(float64(1000 * (pop + 1)))
		h := r.Histogram(`resolve_ns{server="0"}`, "")
		for v := uint64(1); v < 1<<16; v <<= 1 {
			h.Observe(v)
		}
		snaps = append(snaps, r.Snapshot().WithLabel("pop", string(rune('0'+pop))))
	}
	m := MergeSnapshots(snaps...)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := promtext.Parse(sb.String())
	if err != nil {
		t.Fatalf("merged exposition failed strict parse: %v\n%s", err, sb.String())
	}
	n, err := promtext.CheckHistograms(samples)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("validated %d histogram series, want >= 3", n)
	}
	pops := map[string]bool{}
	var total float64
	for _, sm := range samples {
		if sm.Name == "ingest_queries_total" {
			pops[sm.Labels["pop"]] = true
			total += sm.Value
		}
	}
	if len(pops) != 3 || total != 600 {
		t.Fatalf("per-pop counters wrong: pops=%v total=%v", pops, total)
	}
}
