package alerts

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"dnsnoise/internal/qlog"
	"dnsnoise/internal/telemetry/tsdb"
)

// State is one alert instance's position in the lifecycle.
type State uint8

const (
	StateInactive State = iota
	StatePending
	StateFiring
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// Transition is one recorded state change. To is the state entered, except
// that leaving firing is recorded as "resolved" (the state itself returns
// to inactive).
type Transition struct {
	Rule   string    `json:"rule"`
	Series string    `json:"series"`
	From   string    `json:"from"`
	To     string    `json:"to"`
	Time   time.Time `json:"ts"`
	Value  float64   `json:"value"`
}

// instance is the per-(rule, series) state machine.
type instance struct {
	state State
	since time.Time // when the current state was entered
	value float64   // last evaluated long-window value
	seen  time.Time // last eval that had data for this series
}

// transitionRing is how many recent transitions /debug/alerts exposes.
const transitionRing = 256

// Engine evaluates rules against a tsdb on every sweep. All methods are
// safe for concurrent use; Eval is expected from the sweep goroutine.
type Engine struct {
	db     *tsdb.DB
	rules  []Rule
	mirror func(qlog.Event)

	mu    sync.Mutex
	insts map[string]map[string]*instance // rule name -> series -> state
	hist  []Transition
	histN int // total transitions ever; ring position is histN % transitionRing
	evals uint64
}

// Option configures an Engine.
type Option func(*Engine)

// WithQueryLog mirrors every transition into l as a synthetic qlog event
// (Qtype "ALERT", Name "<rule>.<to>.alert") via EmitNow.
func WithQueryLog(l *qlog.Log) Option {
	if l == nil {
		return func(*Engine) {}
	}
	return WithEventMirror(l.EmitNow)
}

// WithEventMirror routes transition events to fn instead of a *qlog.Log —
// the fleet control plane feeds its merged in-memory tail this way.
func WithEventMirror(fn func(qlog.Event)) Option {
	return func(e *Engine) { e.mirror = fn }
}

// NewEngine builds an engine over db. Invalid rules are rejected by
// CLIConfig/ParseRules before they get here; NewEngine trusts its input.
func NewEngine(db *tsdb.DB, rules []Rule, opts ...Option) *Engine {
	e := &Engine{db: db, rules: rules, insts: make(map[string]map[string]*instance)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Eval runs every rule once against the tsdb at time now. A violation must
// hold in both the long window and (if configured) the short window —
// the two-window burn-rate form — to advance the state machine.
func (e *Engine) Eval(now time.Time) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	for _, rule := range e.rules {
		long := e.windowValues(rule, now, rule.window())
		short := long
		if rule.ShortWindow > 0 {
			short = e.windowValues(rule, now, time.Duration(rule.ShortWindow))
		}
		insts := e.insts[rule.Name]
		if insts == nil {
			insts = make(map[string]*instance)
			e.insts[rule.Name] = insts
		}
		for series, v := range long {
			inst := insts[series]
			if inst == nil {
				inst = &instance{since: now}
				insts[series] = inst
			}
			viol := rule.violates(v)
			if viol && rule.ShortWindow > 0 {
				sv, ok := short[series]
				viol = ok && rule.violates(sv)
			}
			inst.value = v
			inst.seen = now
			e.step(rule, series, inst, viol, v, now)
		}
		// Series that stopped reporting (no data in the window) count as
		// recovered: pending clears, firing resolves.
		for series, inst := range insts {
			if _, ok := long[series]; !ok {
				e.step(rule, series, inst, false, inst.value, now)
			}
		}
	}
}

// step advances one instance's state machine and records transitions.
// Caller holds e.mu.
func (e *Engine) step(rule Rule, series string, inst *instance, viol bool, v float64, now time.Time) {
	switch inst.state {
	case StateInactive:
		if !viol {
			return
		}
		if rule.For <= 0 {
			e.transition(rule, series, inst, StateFiring, "firing", v, now)
			return
		}
		e.transition(rule, series, inst, StatePending, "pending", v, now)
	case StatePending:
		if !viol {
			e.transition(rule, series, inst, StateInactive, "inactive", v, now)
			return
		}
		if now.Sub(inst.since) >= time.Duration(rule.For) {
			e.transition(rule, series, inst, StateFiring, "firing", v, now)
		}
	case StateFiring:
		if !viol {
			e.transition(rule, series, inst, StateInactive, "resolved", v, now)
		}
	}
}

// transition moves inst to next, records it in the ring, and mirrors it.
// Caller holds e.mu.
func (e *Engine) transition(rule Rule, series string, inst *instance, next State, label string, v float64, now time.Time) {
	tr := Transition{Rule: rule.Name, Series: series, From: inst.state.String(), To: label, Time: now, Value: v}
	inst.state = next
	inst.since = now
	if e.hist == nil {
		e.hist = make([]Transition, 0, transitionRing)
	}
	if len(e.hist) < transitionRing {
		e.hist = append(e.hist, tr)
	} else {
		e.hist[e.histN%transitionRing] = tr
	}
	e.histN++
	if e.mirror != nil {
		lat := uint64(0)
		if v > 0 {
			lat = uint64(v)
		}
		e.mirror(qlog.Event{
			Time:      now,
			Server:    -1, // not a resolver worker
			Name:      rule.Name + "." + label + ".alert",
			Qtype:     "ALERT",
			LatencyNs: lat,
		})
	}
}

// windowValues aggregates the rule's series over the trailing window ending
// at now, returning the latest aggregated point per matched series. Caller
// holds e.mu (the tsdb has its own lock; e.mu only orders evals).
func (e *Engine) windowValues(rule Rule, now time.Time, window time.Duration) map[string]float64 {
	agg, _ := tsdb.ParseAgg(rule.Agg)
	res := e.db.Query(rule.Series, agg, tsdb.Options{
		Start: now.Add(-window), End: now, Step: window,
	})
	out := make(map[string]float64, len(res))
	for _, r := range res {
		if len(r.Points) > 0 {
			out[r.Name] = r.Points[len(r.Points)-1].V
		}
	}
	return out
}

// InstanceStatus is one (rule, series) state for JSON export.
type InstanceStatus struct {
	Series string    `json:"series"`
	State  string    `json:"state"`
	Since  time.Time `json:"since"`
	Value  float64   `json:"value"`
}

// RuleStatus is one rule plus its live instances.
type RuleStatus struct {
	Rule
	Instances []InstanceStatus `json:"instances,omitempty"`
}

// Status is the full /debug/alerts document.
type Status struct {
	Firing      int          `json:"firing"`
	Pending     int          `json:"pending"`
	Evals       uint64       `json:"evals"`
	Rules       []RuleStatus `json:"rules"`
	Transitions []Transition `json:"transitions,omitempty"`
}

// Snapshot assembles the current alert status, transitions oldest first.
func (e *Engine) Snapshot() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{Evals: e.evals}
	for _, rule := range e.rules {
		rs := RuleStatus{Rule: rule}
		insts := e.insts[rule.Name]
		for _, series := range sortedInstKeys(insts) {
			inst := insts[series]
			rs.Instances = append(rs.Instances, InstanceStatus{
				Series: series, State: inst.state.String(), Since: inst.since, Value: inst.value,
			})
			switch inst.state {
			case StateFiring:
				st.Firing++
			case StatePending:
				st.Pending++
			}
		}
		st.Rules = append(st.Rules, rs)
	}
	if e.histN <= transitionRing {
		st.Transitions = append(st.Transitions, e.hist...)
	} else {
		at := e.histN % transitionRing
		st.Transitions = append(st.Transitions, e.hist[at:]...)
		st.Transitions = append(st.Transitions, e.hist[:at]...)
	}
	return st
}

// Firing reports the number of currently firing instances.
func (e *Engine) Firing() int {
	return e.Snapshot().Firing
}

// Handler serves the alert status as JSON (mounted at /debug/alerts and
// /fleet/alerts).
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e == nil {
			http.Error(w, "alerts disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e.Snapshot())
	})
}

func sortedInstKeys(m map[string]*instance) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
