// Package alerts is the SLO rules engine over the telemetry tsdb: a small
// set of declarative threshold rules, each a windowed query against the
// time-series store, evaluated once per sweep with Prometheus-style
// pending→firing→resolved state transitions. Alert transitions are mirrored
// into the query log so firings sit in the same tail as the queries that
// caused them.
package alerts

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dnsnoise/internal/telemetry/tsdb"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("30s", "1m30s") and unmarshals from either a string or plain seconds.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, perr := time.ParseDuration(s)
		if perr != nil {
			return perr
		}
		*d = Duration(parsed)
		return nil
	}
	var sec float64
	if err := json.Unmarshal(b, &sec); err != nil {
		return fmt.Errorf("alerts: duration must be a string or seconds: %s", b)
	}
	*d = Duration(time.Duration(sec * float64(time.Second)))
	return nil
}

// Rule is one declarative SLO condition: aggregate Series over the trailing
// Window (and, when ShortWindow is set, over that too — the multi-window
// burn-rate form: both must violate, so a long-window breach ends fast once
// the short window recovers), compare against Threshold with Op, and demand
// the violation persist For before firing. One Rule fans out into one alert
// instance per matched series, which is how a single "serve_drop_rate"
// rule covers every PoP of a fleet.
type Rule struct {
	Name   string `json:"name"`
	Series string `json:"series"`
	// Agg is rate|avg|max (default avg).
	Agg string `json:"agg,omitempty"`
	// Op is ">" or "<" (default ">").
	Op        string  `json:"op,omitempty"`
	Threshold float64 `json:"threshold"`
	// Window is the trailing aggregation window (default 1m).
	Window Duration `json:"window,omitempty"`
	// ShortWindow, when set, adds the burn-rate guard window.
	ShortWindow Duration `json:"short_window,omitempty"`
	// For is how long the violation must persist before pending becomes
	// firing. Zero fires immediately.
	For Duration `json:"for,omitempty"`
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("alerts: rule with empty name")
	}
	if r.Series == "" {
		return fmt.Errorf("alerts: rule %q has no series", r.Name)
	}
	if _, err := tsdb.ParseAgg(r.Agg); err != nil {
		return fmt.Errorf("alerts: rule %q: %v", r.Name, err)
	}
	switch r.Op {
	case "", ">", "<":
	default:
		return fmt.Errorf("alerts: rule %q: op %q (want > or <)", r.Name, r.Op)
	}
	if r.Window < 0 || r.ShortWindow < 0 || r.For < 0 {
		return fmt.Errorf("alerts: rule %q: negative duration", r.Name)
	}
	return nil
}

// window returns the effective long window.
func (r Rule) window() time.Duration {
	if r.Window <= 0 {
		return time.Minute
	}
	return time.Duration(r.Window)
}

// violates applies Op.
func (r Rule) violates(v float64) bool {
	if r.Op == "<" {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// DefaultRules is the rule set used when no -alert-rules file is given:
// the serve path's drop share, its p99 handler latency (burn-rate form),
// the resolver cache-hit-ratio floor, and a disposable-verdict-rate spike —
// the regressions the paper's measurements say an operator should watch.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "serve_drop_rate", Series: "serve_drop_rate",
			Threshold: 0.01, Window: Duration(time.Minute),
			ShortWindow: Duration(10 * time.Second), For: Duration(10 * time.Second),
		},
		{
			Name: "p99_latency_ns", Series: "udp_handle_latency_ns_p99",
			Agg: "max", Threshold: 50e6, Window: Duration(time.Minute),
			ShortWindow: Duration(10 * time.Second), For: Duration(10 * time.Second),
		},
		{
			Name: "chr_floor", Series: "cache_hit_ratio",
			Op: "<", Threshold: 0.20, Window: Duration(2 * time.Minute),
			For: Duration(30 * time.Second),
		},
		{
			Name: "verdict_rate_spike", Series: "verdict_rate",
			Threshold: 0.50, Window: Duration(time.Minute),
			ShortWindow: Duration(10 * time.Second), For: Duration(10 * time.Second),
		},
	}
}

// ParseRules decodes a JSON rules document: either a bare array of rules
// or an object with a "rules" field. Every rule is validated.
func ParseRules(data []byte) ([]Rule, error) {
	var doc struct {
		Rules []Rule `json:"rules"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		var arr []Rule
		if aerr := json.Unmarshal(data, &arr); aerr != nil {
			return nil, fmt.Errorf("alerts: bad rules document: %v", err)
		}
		doc.Rules = arr
	}
	if len(doc.Rules) == 0 {
		return nil, fmt.Errorf("alerts: rules document defines no rules")
	}
	for _, r := range doc.Rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	return doc.Rules, nil
}

// LoadRules reads and parses a rules file.
func LoadRules(path string) ([]Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseRules(data)
}
