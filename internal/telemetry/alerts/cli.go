package alerts

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnsnoise/internal/qlog"
	"dnsnoise/internal/telemetry"
	"dnsnoise/internal/telemetry/tsdb"
)

// CLIConfig is the continuous-telemetry flag set shared by the dnsnoise
// commands: -tsdb-interval (sweep cadence, 0 disables everything),
// -tsdb-retain (ring capacity) and -alert-rules (JSON rules file; empty
// uses the built-in defaults, "none" disables alerting). It rides on top
// of telemetry.CLIConfig: the tsdb sweeps the session's Registry, and the
// /debug/tsdb + /debug/alerts handlers mount on the session's endpoint.
type CLIConfig struct {
	Interval  time.Duration
	Retain    int
	RulesPath string
}

// RegisterFlags adds the continuous-telemetry flags to fs.
func (c *CLIConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.DurationVar(&c.Interval, "tsdb-interval", 0,
		"sweep telemetry into the in-process tsdb at this interval and evaluate alert rules (e.g. 1s; 0 disables)")
	fs.IntVar(&c.Retain, "tsdb-retain", tsdb.DefaultRetain,
		"samples retained per tsdb series (ring capacity)")
	fs.StringVar(&c.RulesPath, "alert-rules", "",
		"JSON SLO/alert rules file evaluated each tsdb sweep (empty: built-in defaults; 'none': no rules)")
}

// Rules resolves the flag set's rules: the file when given, the built-in
// defaults otherwise, none for "none".
func (c CLIConfig) Rules() ([]Rule, error) {
	switch c.RulesPath {
	case "none":
		return nil, nil
	case "":
		return DefaultRules(), nil
	default:
		return LoadRules(c.RulesPath)
	}
}

// CLISession owns the running sweeper and engine for one command.
type CLISession struct {
	db      *tsdb.DB
	engine  *Engine
	sweeper *tsdb.Sweeper
	closed  bool
}

// Start wires the tsdb and alert engine onto a telemetry session: the
// sweeper snapshots sess.Registry every Interval, the engine evaluates
// after each sweep, transitions mirror into ql (nil is fine), and the
// debug handlers mount on the session's endpoint when it has one. With
// Interval 0 the returned session is inert. Requires an enabled telemetry
// session — there is nothing to sweep otherwise.
func (c CLIConfig) Start(sess *telemetry.Session, ql *qlog.Log) (*CLISession, error) {
	s := &CLISession{}
	if c.Interval <= 0 {
		return s, nil
	}
	if sess == nil || sess.Registry == nil {
		return nil, fmt.Errorf("alerts: -tsdb-interval needs telemetry enabled (-metrics-addr, -progress or -report)")
	}
	rules, err := c.Rules()
	if err != nil {
		return nil, err
	}
	s.db = tsdb.New(tsdb.Config{Retain: c.Retain})
	s.engine = NewEngine(s.db, rules, WithQueryLog(ql))
	s.sweeper = tsdb.NewSweeper(s.db, c.Interval, sess.Registry.Snapshot)
	s.sweeper.OnSweep(s.engine.Eval)
	sess.Handle("/debug/tsdb", s.db.Handler())
	sess.Handle("/debug/alerts", s.engine.Handler())
	s.sweeper.Start()
	if sess.HasEndpoint() {
		fmt.Fprintf(os.Stderr, "telemetry: tsdb sweeping every %v (%d rules); /debug/tsdb and /debug/alerts live\n",
			c.Interval, len(rules))
	}
	return s, nil
}

// DB exposes the store (nil when disabled), for progress hooks and tests.
func (s *CLISession) DB() *tsdb.DB {
	if s == nil {
		return nil
	}
	return s.db
}

// Engine exposes the rules engine (nil when disabled).
func (s *CLISession) Engine() *Engine {
	if s == nil {
		return nil
	}
	return s.engine
}

// Close stops the sweep loop (recording one final sweep). Idempotent.
// Close before the qlog session closes: the engine mirrors transitions
// into the log, and the final sweep may still emit one.
func (s *CLISession) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	if s.sweeper != nil {
		s.sweeper.Stop()
	}
	return nil
}
