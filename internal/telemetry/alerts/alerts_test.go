package alerts

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"dnsnoise/internal/qlog"
	"dnsnoise/internal/telemetry"
	"dnsnoise/internal/telemetry/tsdb"
)

var t0 = time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)

// feed drives the engine like a sweeper would: record a snapshot carrying
// one gauge value, then evaluate.
func feed(db *tsdb.DB, e *Engine, at time.Time, gauge float64) {
	db.Record(&telemetry.Snapshot{Time: at, Gauges: map[string]float64{"g": gauge}})
	e.Eval(at)
}

func state(e *Engine, rule, series string) string {
	for _, rs := range e.Snapshot().Rules {
		if rs.Name != rule {
			continue
		}
		for _, inst := range rs.Instances {
			if inst.Series == series {
				return inst.State
			}
		}
	}
	return "none"
}

// TestStateMachineTransitionTable walks the full lifecycle against a
// scripted value sequence: inactive while healthy, pending on violation,
// back to inactive when it clears early, firing once For elapses, resolved
// on recovery, and immediate firing when For is zero.
func TestStateMachineTransitionTable(t *testing.T) {
	// Window of 1s with samples 1s+ apart: each eval sees exactly the
	// newest sample, so the table reads as instantaneous values.
	rule := Rule{
		Name: "g_high", Series: "g", Agg: "max", Threshold: 10,
		Window: Duration(time.Second), For: Duration(2 * time.Second),
	}
	db := tsdb.New(tsdb.Config{Retain: 64, Derived: []tsdb.DerivedRule{}})
	e := NewEngine(db, []Rule{rule})

	steps := []struct {
		dt   time.Duration
		v    float64
		want string
	}{
		{0, 5, "inactive"},              // healthy
		{time.Second, 5, "inactive"},    // still healthy
		{time.Second, 15, "pending"},    // violation starts
		{time.Second, 15, "pending"},    // 1s < For
		{time.Second, 5, "inactive"},    // cleared before For: back down
		{time.Second, 20, "pending"},    // violation again
		{2 * time.Second, 20, "firing"}, // held For: fires
		{time.Second, 25, "firing"},     // stays firing
		{time.Second, 5, "inactive"},    // recovers: resolved
		{time.Second, 5, "inactive"},    // stays down
	}
	now := t0
	for i, s := range steps {
		now = now.Add(s.dt)
		feed(db, e, now, s.v)
		if got := state(e, "g_high", "g"); got != s.want {
			t.Fatalf("step %d (v=%v): state = %s, want %s", i, s.v, got, s.want)
		}
	}

	// The recorded transition sequence is the end-to-end story.
	var seq []string
	for _, tr := range e.Snapshot().Transitions {
		seq = append(seq, tr.To)
	}
	want := []string{"pending", "inactive", "pending", "firing", "resolved"}
	if len(seq) != len(want) {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s (%v)", i, seq[i], want[i], seq)
		}
	}
}

func TestZeroForFiresImmediately(t *testing.T) {
	rule := Rule{Name: "g_now", Series: "g", Agg: "max", Threshold: 10, Window: Duration(5 * time.Second)}
	db := tsdb.New(tsdb.Config{Retain: 16, Derived: []tsdb.DerivedRule{}})
	e := NewEngine(db, []Rule{rule})
	feed(db, e, t0, 99)
	if got := state(e, "g_now", "g"); got != "firing" {
		t.Fatalf("state = %s, want firing (For=0)", got)
	}
}

// TestShortWindowGuard: with a short burn-rate window configured, a stale
// long-window violation alone must not advance the machine once the short
// window has recovered.
func TestShortWindowGuard(t *testing.T) {
	rule := Rule{
		Name: "g_burn", Series: "g", Agg: "max", Threshold: 10,
		Window: Duration(20 * time.Second), ShortWindow: Duration(2 * time.Second),
	}
	db := tsdb.New(tsdb.Config{Retain: 64, Derived: []tsdb.DerivedRule{}})
	e := NewEngine(db, []Rule{rule})

	feed(db, e, t0, 50) // violates both windows: fires (For=0)
	if got := state(e, "g_burn", "g"); got != "firing" {
		t.Fatalf("state = %s, want firing", got)
	}
	// 5s later the short window only sees the healthy sample; the long
	// window still contains the 50. Burn-rate guard must resolve.
	feed(db, e, t0.Add(5*time.Second), 1)
	if got := state(e, "g_burn", "g"); got != "inactive" {
		t.Fatalf("state after short-window recovery = %s, want inactive", got)
	}
	if got := e.Snapshot().Transitions; got[len(got)-1].To != "resolved" {
		t.Fatalf("last transition = %+v, want resolved", got[len(got)-1])
	}
}

// TestPerSeriesInstances: one rule fans out per matched series (the fleet's
// per-PoP labels), with independent state machines.
func TestPerSeriesInstances(t *testing.T) {
	rule := Rule{Name: "qps_high", Series: "qps", Agg: "max", Threshold: 100, Window: Duration(5 * time.Second)}
	db := tsdb.New(tsdb.Config{Retain: 16, Derived: []tsdb.DerivedRule{}})
	e := NewEngine(db, []Rule{rule})
	db.Record(&telemetry.Snapshot{Time: t0, Gauges: map[string]float64{
		`qps{pop="0"}`: 500, `qps{pop="1"}`: 50,
	}})
	e.Eval(t0)
	if got := state(e, "qps_high", `qps{pop="0"}`); got != "firing" {
		t.Fatalf("pop0 = %s, want firing", got)
	}
	if got := state(e, "qps_high", `qps{pop="1"}`); got != "inactive" {
		t.Fatalf("pop1 = %s, want inactive", got)
	}
	st := e.Snapshot()
	if st.Firing != 1 {
		t.Fatalf("firing = %d, want 1", st.Firing)
	}
}

// TestNoDataResolves: a firing series that stops reporting resolves.
func TestNoDataResolves(t *testing.T) {
	rule := Rule{Name: "g_high", Series: "g", Agg: "max", Threshold: 10, Window: Duration(2 * time.Second)}
	db := tsdb.New(tsdb.Config{Retain: 16, Derived: []tsdb.DerivedRule{}})
	e := NewEngine(db, []Rule{rule})
	feed(db, e, t0, 99)
	if got := state(e, "g_high", "g"); got != "firing" {
		t.Fatalf("state = %s, want firing", got)
	}
	// Next eval far in the future: the window holds no samples at all.
	e.Eval(t0.Add(time.Minute))
	if got := state(e, "g_high", "g"); got != "inactive" {
		t.Fatalf("state with no data = %s, want inactive (resolved)", got)
	}
}

// TestQlogMirror: transitions show up in an attached query log as ALERT
// events, filterable like any other event.
func TestQlogMirror(t *testing.T) {
	l := qlog.New(qlog.Config{Sample: 1})
	mem := qlog.NewMemorySink(16)
	l.AddSink(mem)

	rule := Rule{Name: "g_high", Series: "g", Agg: "max", Threshold: 10, Window: Duration(2 * time.Second)}
	db := tsdb.New(tsdb.Config{Retain: 16, Derived: []tsdb.DerivedRule{}})
	e := NewEngine(db, []Rule{rule}, WithQueryLog(l))
	feed(db, e, t0, 99)                   // firing
	feed(db, e, t0.Add(3*time.Second), 1) // window slides past the 99: resolved

	evs := mem.Snapshot(qlog.Filter{Qtype: "ALERT"})
	if len(evs) != 2 {
		t.Fatalf("ALERT events = %+v, want 2", evs)
	}
	if evs[0].Name != "g_high.firing.alert" || evs[1].Name != "g_high.resolved.alert" {
		t.Fatalf("event names = %q, %q", evs[0].Name, evs[1].Name)
	}
	if evs[0].ID == 0 || evs[0].LatencyNs != 99 {
		t.Fatalf("event not stamped: %+v", evs[0])
	}
}

func TestParseRules(t *testing.T) {
	doc := `{"rules":[
	  {"name":"p99","series":"udp_handle_latency_ns_p99","agg":"max","threshold":5e7,
	   "window":"1m","short_window":"10s","for":"10s"},
	  {"name":"chr","series":"cache_hit_ratio","op":"<","threshold":0.2,"window":30}
	]}`
	rules, err := ParseRules([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %+v", rules)
	}
	if rules[0].ShortWindow != Duration(10*time.Second) || rules[1].Window != Duration(30*time.Second) {
		t.Fatalf("durations parsed wrong: %+v", rules)
	}
	if rules[1].Op != "<" {
		t.Fatalf("op = %q", rules[1].Op)
	}

	for _, bad := range []string{
		`{"rules":[]}`,
		`{"rules":[{"series":"x"}]}`,
		`{"rules":[{"name":"a"}]}`,
		`{"rules":[{"name":"a","series":"x","agg":"p95"}]}`,
		`{"rules":[{"name":"a","series":"x","op":">="}]}`,
		`not json`,
	} {
		if _, err := ParseRules([]byte(bad)); err == nil {
			t.Errorf("ParseRules(%q) succeeded, want error", bad)
		}
	}

	// Bare-array form and round-trip through the Duration marshaller.
	arr, err := ParseRules([]byte(`[{"name":"a","series":"x","threshold":1,"window":"90s"}]`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(arr[0])
	if err != nil {
		t.Fatal(err)
	}
	var back Rule
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Window != Duration(90*time.Second) {
		t.Fatalf("round-trip window = %v", back.Window)
	}
}

func TestDefaultRulesValid(t *testing.T) {
	for _, r := range DefaultRules() {
		if err := r.validate(); err != nil {
			t.Errorf("default rule %q invalid: %v", r.Name, err)
		}
	}
}

func TestHandler(t *testing.T) {
	rule := Rule{Name: "g_high", Series: "g", Agg: "max", Threshold: 10, Window: Duration(2 * time.Second)}
	db := tsdb.New(tsdb.Config{Retain: 16, Derived: []tsdb.DerivedRule{}})
	e := NewEngine(db, []Rule{rule})
	feed(db, e, t0, 99)

	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Firing != 1 || len(st.Rules) != 1 || len(st.Transitions) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Rules[0].Instances[0].State != "firing" {
		t.Fatalf("instance = %+v", st.Rules[0].Instances[0])
	}
}
