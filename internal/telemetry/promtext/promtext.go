// Package promtext is a strict parser for the Prometheus text exposition
// format (version 0.0.4), used by tests and the fleet control plane to
// validate /metrics payloads: metric-name and label-name charsets,
// label-value quoting, HELP/TYPE placement and uniqueness, sample grouping
// under the TYPE header, and cumulative histogram buckets ending in
// le="+Inf" with matching _sum/_count.
package promtext

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseLabels scans a `{k="v",...}` block, enforcing the quoting rules:
// values are double-quoted with only \\, \", and \n escapes.
func ParseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(s) {
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return nil, fmt.Errorf("label %q missing '='", s[i:])
		}
		name := s[i : i+j]
		if !labelRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %s, got %q", name, s[i:])
			}
			i++
		}
	}
	return labels, nil
}

// ParseSample parses one sample line (no comments).
func ParseSample(line string) (Sample, error) {
	var sm Sample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return sm, fmt.Errorf("unbalanced braces in %q", line)
		}
		sm.Name = line[:i]
		labels, err := ParseLabels(line[i+1 : end])
		if err != nil {
			return sm, err
		}
		sm.Labels = labels
		rest = strings.TrimPrefix(line[end+1:], " ")
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return sm, fmt.Errorf("sample %q has no value", line)
		}
		sm.Name = line[:sp]
		sm.Labels = map[string]string{}
		rest = line[sp+1:]
	}
	if !nameRe.MatchString(sm.Name) {
		return sm, fmt.Errorf("bad metric name %q", sm.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return sm, fmt.Errorf("sample %q: want exactly one value, got %v", line, fields)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sm, fmt.Errorf("sample %q: %v", line, err)
	}
	sm.Value = v
	return sm, nil
}

// SeriesKey identifies one labeled series, ignoring the histogram's
// per-bucket le label.
func SeriesKey(sm Sample) string {
	pairs := make([]string, 0, len(sm.Labels))
	for k, v := range sm.Labels {
		if k == "le" {
			continue
		}
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return sm.Name + "{" + strings.Join(pairs, ",") + "}"
}

// Parse applies the structural rules to a full payload and returns the
// samples, or the first violation.
func Parse(out string) ([]Sample, error) {
	var (
		samples   []Sample
		helped    = map[string]bool{}
		typed     = map[string]string{} // base -> type
		sampled   = map[string]bool{}   // base has samples already
		current   string                // base the last TYPE header opened
		validType = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	)
	baseOf := func(name, typ string) string {
		if typ == "histogram" || typ == "summary" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(name, suf); b != name && typed[b] == typ {
					return b
				}
			}
		}
		return name
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return nil, fmt.Errorf("malformed comment line %q", line)
			}
			kind, name := fields[1], fields[2]
			switch kind {
			case "HELP":
				if !nameRe.MatchString(name) {
					return nil, fmt.Errorf("HELP for bad name %q", name)
				}
				if helped[name] {
					return nil, fmt.Errorf("duplicate HELP for %s", name)
				}
				if typed[name] != "" || sampled[name] {
					return nil, fmt.Errorf("HELP for %s after its TYPE or samples", name)
				}
				if len(fields) == 4 && strings.ContainsAny(fields[3], "\n") {
					return nil, fmt.Errorf("HELP for %s contains raw newline", name)
				}
				helped[name] = true
			case "TYPE":
				if !nameRe.MatchString(name) {
					return nil, fmt.Errorf("TYPE for bad name %q", name)
				}
				if len(fields) != 4 || !validType[fields[3]] {
					return nil, fmt.Errorf("bad TYPE line %q", line)
				}
				if typed[name] != "" {
					return nil, fmt.Errorf("duplicate TYPE for %s", name)
				}
				if sampled[name] {
					return nil, fmt.Errorf("TYPE for %s after its samples", name)
				}
				typed[name] = fields[3]
				current = name
			default:
				return nil, fmt.Errorf("unknown comment keyword in %q", line)
			}
			continue
		}
		sm, err := ParseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", line, err)
		}
		base := sm.Name
		if typ := typed[current]; current != "" {
			if b := baseOf(sm.Name, typ); b == current {
				base = b
			}
		}
		if base != current {
			return nil, fmt.Errorf("sample %q outside its metric's TYPE group (current %s)", line, current)
		}
		sampled[base] = true
		samples = append(samples, sm)
	}
	for base := range helped {
		if typed[base] == "" {
			return nil, fmt.Errorf("HELP for %s without a TYPE", base)
		}
	}
	return samples, nil
}

// CheckHistograms validates every histogram series — le on all buckets,
// cumulative counts, a final +Inf bucket equal to _count — and returns
// how many series it validated.
func CheckHistograms(samples []Sample) (int, error) {
	type hist struct {
		lastLe   float64
		lastCum  float64
		infCount float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	series := map[string]*hist{}
	get := func(key string) *hist {
		h := series[key]
		if h == nil {
			h = &hist{lastLe: math.Inf(-1)}
			series[key] = h
		}
		return h
	}
	for _, sm := range samples {
		switch {
		case strings.HasSuffix(sm.Name, "_bucket"):
			base := sm
			base.Name = strings.TrimSuffix(sm.Name, "_bucket")
			key := SeriesKey(base)
			h := get(key)
			le, ok := sm.Labels["le"]
			if !ok {
				return 0, fmt.Errorf("bucket %s missing le label", key)
			}
			if le == "+Inf" {
				h.hasInf, h.infCount = true, sm.Value
				if sm.Value < h.lastCum {
					return 0, fmt.Errorf("%s: +Inf bucket %v below cumulative %v", key, sm.Value, h.lastCum)
				}
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return 0, fmt.Errorf("%s: le=%q not a float: %v", key, le, err)
			}
			if h.hasInf {
				return 0, fmt.Errorf("%s: bucket after +Inf", key)
			}
			if bound <= h.lastLe {
				return 0, fmt.Errorf("%s: le %v not increasing past %v", key, bound, h.lastLe)
			}
			if sm.Value < h.lastCum {
				return 0, fmt.Errorf("%s: bucket count %v not cumulative past %v", key, sm.Value, h.lastCum)
			}
			h.lastLe, h.lastCum = bound, sm.Value
		case strings.HasSuffix(sm.Name, "_count"):
			base := sm
			base.Name = strings.TrimSuffix(sm.Name, "_count")
			h := get(SeriesKey(base))
			h.hasCount, h.count = true, sm.Value
		}
	}
	checked := 0
	for key, h := range series {
		if !h.hasInf && !h.hasCount {
			continue // a counter that happens to end in _count, etc.
		}
		if !h.hasInf || !h.hasCount {
			return 0, fmt.Errorf("%s: incomplete histogram (inf=%v count=%v)", key, h.hasInf, h.hasCount)
		}
		if h.infCount != h.count {
			return 0, fmt.Errorf("%s: +Inf bucket %v != _count %v", key, h.infCount, h.count)
		}
		checked++
	}
	return checked, nil
}
