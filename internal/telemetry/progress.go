package telemetry

import (
	"context"
	"log/slog"
	"runtime"
	"time"
)

// ProgressFunc produces the workload-specific attributes for one
// progress line (qps since the last line, cache hit ratio so far, ...).
// It runs on the progress goroutine at every tick.
type ProgressFunc func(elapsed time.Duration) []slog.Attr

// StartProgress logs one structured "progress" line to l every
// interval: the attributes from fn (may be nil) plus process vitals
// (uptime, heap bytes, goroutine count). It returns a stop function
// that halts the ticker and emits one final line; stop is idempotent.
func StartProgress(l *slog.Logger, interval time.Duration, fn ProgressFunc) (stop func()) {
	if l == nil || interval <= 0 {
		return func() {}
	}
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				logProgress(l, start, fn)
			case <-done:
				logProgress(l, start, fn)
				return
			}
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-finished
	}
}

func logProgress(l *slog.Logger, start time.Time, fn ProgressFunc) {
	elapsed := time.Since(start)
	attrs := []slog.Attr{
		slog.Float64("uptime_s", elapsed.Seconds()),
	}
	if fn != nil {
		attrs = append(attrs, fn(elapsed)...)
	}
	attrs = append(attrs, runtimeAttrs()...)
	l.LogAttrs(context.Background(), slog.LevelInfo, "progress", attrs...)
}

// runtimeAttrs returns the process-vital attributes shared by every
// structured progress line.
func runtimeAttrs() []slog.Attr {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []slog.Attr{
		slog.Uint64("heap_bytes", ms.HeapAlloc),
		slog.Int("goroutines", runtime.NumGoroutine()),
	}
}

// registerRuntimeMetrics adds the Go runtime gauges every registry
// carries, so any scrape shows process health next to pipeline counters.
func registerRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return uint64(ms.NumGC)
		})
	r.HistogramFunc("go_gc_pause_ns", "Stop-the-world GC pause durations.",
		func() HistogramSnapshot {
			// Rebuild the distribution from the runtime's circular pause
			// buffer (the most recent 256 pauses) on every read; cumulative
			// Count/Sum come from the totals so tsdb deltas stay monotonic.
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			var counts [histBuckets]uint64
			n := uint32(len(ms.PauseNs))
			if ms.NumGC < n {
				n = ms.NumGC
			}
			for i := uint32(0); i < n; i++ {
				counts[bucketOf(ms.PauseNs[i])]++
			}
			s := HistogramSnapshot{Count: uint64(ms.NumGC), Sum: ms.PauseTotalNs}
			for i, c := range counts {
				if c > 0 {
					s.Buckets = append(s.Buckets, Bucket{Lo: bucketLo(i), Hi: bucketHi(i), Count: c})
				}
			}
			s.P50 = s.Quantile(0.50)
			s.P95 = s.Quantile(0.95)
			s.P99 = s.Quantile(0.99)
			return s
		})
}
