package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file is the fleet-side merge layer: snapshots pulled from many
// PoP registries are relabeled with pop="N", combined additively, and
// re-rendered as one Prometheus exposition. Merging works on snapshots
// (not live registries) so the collector can pull atomically-consistent
// copies without holding any PoP's lock.

// Merge combines two histogram snapshots additively: counts and sums
// add, buckets with the same bounds add, and the quantile estimates are
// recomputed over the combined distribution.
func (s HistogramSnapshot) Merge(other HistogramSnapshot) HistogramSnapshot {
	var m HistogramSnapshot
	m.Count = s.Count + other.Count
	m.Sum = s.Sum + other.Sum
	at := make(map[uint64]Bucket, len(s.Buckets)+len(other.Buckets))
	for _, b := range s.Buckets {
		at[b.Lo] = b
	}
	for _, b := range other.Buckets {
		if prev, ok := at[b.Lo]; ok {
			b.Count += prev.Count
		}
		at[b.Lo] = b
	}
	m.Buckets = make([]Bucket, 0, len(at))
	for _, b := range at {
		m.Buckets = append(m.Buckets, b)
	}
	sort.Slice(m.Buckets, func(i, j int) bool { return m.Buckets[i].Lo < m.Buckets[j].Lo })
	m.P50 = m.Quantile(0.50)
	m.P95 = m.Quantile(0.95)
	m.P99 = m.Quantile(0.99)
	return m
}

// WithLabel returns a copy of the snapshot with key="value" appended to
// every series' label set — how the fleet collector stamps each PoP's
// snapshot with pop="N" before merging, so per-PoP series stay distinct
// in the merged exposition. The receiver is not modified.
func (s *Snapshot) WithLabel(key, value string) *Snapshot {
	if s == nil {
		return nil
	}
	pair := fmt.Sprintf("%s=%q", key, value)
	relabel := func(name string) string {
		base, labels := splitSeries(name)
		return base + joinLabels(labels, pair)
	}
	out := &Snapshot{
		Time:       s.Time,
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[relabel(name)] = v
	}
	for name, v := range s.Gauges {
		out.Gauges[relabel(name)] = v
	}
	for name, v := range s.Histograms {
		out.Histograms[relabel(name)] = v
	}
	return out
}

// MergeSnapshots combines snapshots into one: counters and gauges with
// the same series name sum, histograms merge bucket-wise, and Time is
// the latest of the inputs. Nil snapshots are skipped. Callers that want
// per-source series to stay distinct (the fleet collector) relabel each
// input with WithLabel first so no series names collide.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.Time.After(out.Time) {
			out.Time = s.Time
		}
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, v := range s.Histograms {
			out.Histograms[name] = out.Histograms[name].Merge(v)
		}
	}
	return out
}

// WritePrometheus renders the snapshot in the text exposition format
// (version 0.0.4). Unlike Registry.WritePrometheus it groups series by
// base name explicitly before emitting, since map iteration carries no
// registry ordering: one # TYPE header per base, all of that base's
// series directly under it. Snapshots carry no help text, so no # HELP
// lines are written. A base that appears under two instrument kinds is
// an error.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	type family struct {
		kind   string
		series []string
	}
	fams := map[string]*family{}
	add := func(name, kind string) error {
		base, _ := splitSeries(name)
		f := fams[base]
		if f == nil {
			f = &family{kind: kind}
			fams[base] = f
		} else if f.kind != kind {
			return fmt.Errorf("telemetry: series %s is both %s and %s", base, f.kind, kind)
		}
		f.series = append(f.series, name)
		return nil
	}
	for name := range s.Counters {
		if err := add(name, "counter"); err != nil {
			return err
		}
	}
	for name := range s.Gauges {
		if err := add(name, "gauge"); err != nil {
			return err
		}
	}
	for name := range s.Histograms {
		if err := add(name, "histogram"); err != nil {
			return err
		}
	}
	bases := make([]string, 0, len(fams))
	for base := range fams {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		f := fams[base]
		sort.Strings(f.series)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, f.kind); err != nil {
			return err
		}
		for _, name := range f.series {
			_, labels := splitSeries(name)
			var err error
			switch f.kind {
			case "counter":
				_, err = fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels), s.Counters[name])
			case "gauge":
				_, err = fmt.Fprintf(w, "%s%s %s\n", base, joinLabels(labels),
					strconv.FormatFloat(s.Gauges[name], 'g', -1, 64))
			case "histogram":
				err = writePromHistogram(w, base, labels, s.Histograms[name])
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
