package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind identifies a metric's type.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// entry is one registered metric: either a direct instrument or a
// read-time collection function (for code that keeps its own
// single-writer shards and merges them on read).
type entry struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	counterFn func() uint64
	gaugeFn   func() float64
	histFn    func() HistogramSnapshot
}

// Registry is a named collection of metrics. A nil *Registry is the
// disabled state: every method is a no-op and every instrument it hands
// out is nil (whose methods are no-ops in turn), so "telemetry off"
// costs one nil check per instrumented site.
//
// Metric names follow the Prometheus exposition conventions:
// snake_case, unit suffix, "_total" for counters. A name may carry a
// label set in curly braces (`resolver_queries_total{server="0"}`);
// the exposition writer merges series of the same base name under one
// family. Registering the same name twice returns the existing
// instrument; registering it with a different kind panics.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	last    *Snapshot // previous DeltaSnapshot baseline
}

// NewRegistry returns a registry pre-populated with Go runtime gauges
// (go_goroutines, go_heap_alloc_bytes, go_gc_cycles_total).
func NewRegistry() *Registry {
	r := &Registry{entries: make(map[string]*entry)}
	registerRuntimeMetrics(r)
	return r
}

// lookup get-or-creates the entry for name, panicking on kind mismatch.
func (r *Registry) lookup(name, help string, kind Kind) *entry {
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name, help: help, kind: kind}
		r.entries[name] = e
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as a different kind", name))
	}
	return e
}

// Counter get-or-creates the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, help, KindCounter)
	if e.counter == nil && e.counterFn == nil {
		e.counter = new(Counter)
	}
	return e.counter
}

// Gauge get-or-creates the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, help, KindGauge)
	if e.gauge == nil && e.gaugeFn == nil {
		e.gauge = new(Gauge)
	}
	return e.gauge
}

// Histogram get-or-creates the named histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, help, KindHistogram)
	if e.hist == nil && e.histFn == nil {
		e.hist = new(Histogram)
	}
	return e.hist
}

// CounterFunc registers a counter whose value is read from fn at
// collection time — the zero-hot-path-cost pattern for code that already
// keeps single-writer shards (e.g. the resolver's per-server stats).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, KindCounter).counterFn = fn
}

// GaugeFunc registers a gauge read from fn at collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, KindGauge).gaugeFn = fn
}

// HistogramFunc registers a histogram whose snapshot is produced by fn
// at collection time — typically a SnapshotHistograms merge over
// per-worker shards.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, KindHistogram).histFn = fn
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Time       time.Time                    `json:"time"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// sortedEntries returns the registry's entries ordered by name, holding
// the lock only for the copy (collection functions run unlocked, so
// they may themselves take locks).
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (e *entry) counterValue() uint64 {
	if e.counterFn != nil {
		return e.counterFn()
	}
	return e.counter.Value()
}

func (e *entry) gaugeValue() float64 {
	if e.gaugeFn != nil {
		return e.gaugeFn()
	}
	return e.gauge.Value()
}

func (e *entry) histValue() HistogramSnapshot {
	if e.histFn != nil {
		return e.histFn()
	}
	return e.hist.Snapshot()
}

// Snapshot captures every metric. It never blocks writers: instruments
// are read atomically and collection functions run outside the registry
// lock. A nil registry yields a nil snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Time:       time.Now(),
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range r.sortedEntries() {
		switch e.kind {
		case KindCounter:
			s.Counters[e.name] = e.counterValue()
		case KindGauge:
			s.Gauges[e.name] = e.gaugeValue()
		case KindHistogram:
			s.Histograms[e.name] = e.histValue()
		}
	}
	return s
}

// DeltaSnapshot captures every metric and also returns the change since
// the previous DeltaSnapshot call (or since registry creation, the
// first time). The periodic progress logger is built on it.
func (r *Registry) DeltaSnapshot() (cur, delta *Snapshot) {
	if r == nil {
		return nil, nil
	}
	cur = r.Snapshot()
	r.mu.Lock()
	prev := r.last
	r.last = cur
	r.mu.Unlock()
	return cur, cur.Delta(prev)
}

// Delta returns the change from prev to s: counters and histograms
// subtracted (clamped at zero), gauges carried over as-is. A nil prev
// returns s unchanged.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	if prev == nil {
		return s
	}
	d := &Snapshot{
		Time:       s.Time,
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = subClamp(v, prev.Counters[name])
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, v := range s.Histograms {
		d.Histograms[name] = v.Delta(prev.Histograms[name])
	}
	return d
}

// Counter returns the named counter's value in the snapshot (0 when
// absent or for a nil snapshot).
func (s *Snapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}
