package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// splitSeries separates an optional label set from a metric name:
// `resolver_queries_total{server="0"}` → base "resolver_queries_total",
// labels `server="0"`.
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// joinLabels renders a label set ("" for none) plus any extra pairs.
func joinLabels(labels string, extra ...string) string {
	parts := make([]string, 0, 1+len(extra))
	if labels != "" {
		parts = append(parts, labels)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4). Series sharing a base name are grouped under
// one # TYPE header; histograms expose cumulative le buckets plus _sum
// and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	typed := make(map[string]bool)
	for _, e := range r.sortedEntries() {
		base, labels := splitSeries(e.name)
		if !typed[base] {
			typed[base] = true
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typeName(e.kind)); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels), e.counterValue())
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", base, joinLabels(labels),
				strconv.FormatFloat(e.gaugeValue(), 'g', -1, 64))
		case KindHistogram:
			err = writePromHistogram(w, base, labels, e.histValue())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func typeName(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func writePromHistogram(w io.Writer, base, labels string, s HistogramSnapshot) error {
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			base, joinLabels(labels, fmt.Sprintf("le=%q", strconv.FormatUint(b.Hi, 10))), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, joinLabels(labels), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels), s.Count)
	return err
}

// expvar integration: /debug/vars serves the process-wide expvar map, so
// the registry snapshot is published there once under "telemetry",
// reading whichever registry most recently built a handler.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// Handler returns the telemetry HTTP mux:
//
//	GET /metrics         Prometheus text exposition
//	GET /debug/vars      expvar JSON (includes the registry snapshot)
//	GET /debug/pprof/*   net/http/pprof profiles
func (r *Registry) Handler() http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "dnsnoise telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// HTTPServer is a running telemetry endpoint.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// Addr returns the bound address (host:port), useful with ":0".
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close shuts the endpoint down.
func (h *HTTPServer) Close() error { return h.srv.Close() }

// Handle mounts handler at pattern on the endpoint — how qlog attaches
// /debug/qlog next to /metrics. ServeMux registration is safe while
// serving; more-specific patterns win over the registry's catch-all.
func (h *HTTPServer) Handle(pattern string, handler http.Handler) {
	if h == nil {
		return
	}
	h.mux.Handle(pattern, handler)
}

// Serve binds addr and serves the telemetry handler until Close. The
// returned server reports the resolved address, so addr may use port 0.
// The registry's routes sit under a catch-all, leaving the returned
// server's Handle free to mount additional debug routes.
func (r *Registry) Serve(addr string) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", r.Handler())
	h := &HTTPServer{ln: ln, srv: &http.Server{Handler: mux}, mux: mux}
	go func() { _ = h.srv.Serve(ln) }()
	return h, nil
}
