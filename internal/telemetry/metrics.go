// Package telemetry is the pipeline's observability layer: a
// dependency-free metrics core (atomic counters, gauges, and
// power-of-two-bucket histograms collected in a named Registry), a Span
// API for timing named pipeline stages, Prometheus/expvar/pprof HTTP
// exposure, a periodic structured progress logger, and machine-readable
// end-of-run reports.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Registry, *Tracer, or *Span are no-ops, so instrumented
// code paths need no "is telemetry on?" branching beyond holding a nil
// pointer. Instruments are lock-free (single atomic op per update), so
// hot paths may update them directly; code that cannot afford even an
// uncontended atomic keeps its own single-writer shards and registers a
// read-time merge via the registry's *Func variants instead.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter ignores updates and reads as 0.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The zero value is ready to
// use; a nil *Gauge ignores updates and reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add offsets the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the histogram bucket count: bucket 0 holds zero-valued
// observations, bucket i (1..64) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram counts uint64 observations (latencies in nanoseconds, sizes
// in bytes, ...) in power-of-two buckets. Updates are a few uncontended
// atomic adds; reads (Snapshot, Quantile) walk the buckets without
// stopping writers, so a snapshot taken mid-update may be off by the
// in-flight observation. The zero value is ready to use; a nil
// *Histogram ignores observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for v: 0 for v == 0, else
// bits.Len64(v) so that bucket i covers [2^(i-1), 2^i).
func bucketOf(v uint64) int { return bits.Len64(v) }

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) uint64 {
	if i <= 1 {
		return uint64(i) // bucket 0 holds zeros, bucket 1 starts at 1
	}
	return 1 << (i - 1)
}

// HistogramBuckets is the exported bucket count, for consumers (the
// qlog exemplar store) that index by the same bucket scheme.
const HistogramBuckets = histBuckets

// HistogramBucketOf returns the bucket index Observe(v) lands in, so
// external stores can key per-bucket state against the exposition.
func HistogramBucketOf(v uint64) int { return bucketOf(v) }

// HistogramBucketBounds returns bucket i's [lo, hi) value range (hi is
// MaxUint64 for the last bucket).
func HistogramBucketBounds(i int) (lo, hi uint64) { return bucketLo(i), bucketHi(i) }

// bucketHi returns the exclusive upper bound of bucket i, or MaxUint64
// for the last bucket.
func bucketHi(i int) uint64 {
	if i == 0 {
		return 1
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot captures the histogram's current state, including the p50,
// p95 and p99 quantile estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return SnapshotHistograms(h)
}

// Quantile estimates the q-th quantile (clamped into [0, 1]) from the
// bucket counts, interpolating linearly inside the covering bucket. The
// estimate is exact for zero values and within one power-of-two bucket
// otherwise. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Bucket is one histogram bucket: observations in [Lo, Hi).
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram (or a
// read-time merge of several shards), with only non-empty buckets kept.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
}

// SnapshotHistograms merges one or more histogram shards into a single
// snapshot — the read path for per-worker sharded histograms. Nil shards
// are skipped.
func SnapshotHistograms(hs ...*Histogram) HistogramSnapshot {
	var counts [histBuckets]uint64
	var s HistogramSnapshot
	for _, h := range hs {
		if h == nil {
			continue
		}
		s.Count += h.count.Load()
		s.Sum += h.sum.Load()
		for i := range h.buckets {
			counts[i] += h.buckets[i].Load()
		}
	}
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Lo: bucketLo(i), Hi: bucketHi(i), Count: c})
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-th quantile from the snapshot's buckets (see
// Histogram.Quantile).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if rank <= next || b == s.Buckets[len(s.Buckets)-1] {
			if b.Lo == 0 {
				return 0
			}
			frac := (rank - cum) / float64(b.Count)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return float64(b.Lo) + frac*float64(b.Hi-b.Lo)
		}
		cum = next
	}
	return 0
}

// Delta returns a snapshot of the activity between prev and s (counts
// and buckets subtracted, quantiles recomputed over the difference).
// Counts that went backwards clamp to zero.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	d.Count = subClamp(s.Count, prev.Count)
	d.Sum = subClamp(s.Sum, prev.Sum)
	prevAt := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevAt[b.Lo] = b.Count
	}
	for _, b := range s.Buckets {
		if c := subClamp(b.Count, prevAt[b.Lo]); c > 0 {
			d.Buckets = append(d.Buckets, Bucket{Lo: b.Lo, Hi: b.Hi, Count: c})
		}
	}
	d.P50 = d.Quantile(0.50)
	d.P95 = d.Quantile(0.95)
	d.P99 = d.Quantile(0.99)
	return d
}

func subClamp(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
