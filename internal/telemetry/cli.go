package telemetry

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"
)

// CLIConfig is the observability flag set shared by the dnsnoise
// commands: -metrics-addr (HTTP endpoint), -progress (periodic
// structured log line), and -report (end-of-run JSON). All three are
// opt-in; with none set, Start returns a Session whose Registry and
// Tracer are nil, so every downstream instrument is a no-op and the
// command's output is bit-for-bit what it was without telemetry.
type CLIConfig struct {
	MetricsAddr string
	Interval    time.Duration
	ReportPath  string
}

// RegisterFlags adds the telemetry flags to fs.
func (c *CLIConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "",
		"serve GET /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9153; empty disables)")
	fs.DurationVar(&c.Interval, "progress", 0,
		"log a structured progress line to stderr at this interval (e.g. 10s; 0 disables)")
	fs.StringVar(&c.ReportPath, "report", "",
		"write a machine-readable JSON run report to this path at exit ('-' for stdout; empty disables)")
}

func (c CLIConfig) enabled() bool {
	return c.MetricsAddr != "" || c.Interval > 0 || c.ReportPath != ""
}

// Session is one command invocation's observability state. Registry,
// Tracer and Logger are nil when the matching flags are off — pass them
// through unconditionally; everything downstream is nil-safe.
type Session struct {
	Registry *Registry
	Tracer   *Tracer
	Logger   *slog.Logger // non-nil only when -progress is set

	interval     time.Duration
	report       *RunReport
	reportPath   string
	server       *HTTPServer
	stopProgress func()
	closed       bool
}

// Start builds the session from the parsed flags: it creates the
// registry and tracer, binds the HTTP endpoint, and starts the report
// clock. Callers should defer Close and also call it explicitly at the
// end of a successful run to surface report-write errors.
func (c CLIConfig) Start(command string, args []string) (*Session, error) {
	s := &Session{interval: c.Interval, reportPath: c.ReportPath}
	if !c.enabled() {
		return s, nil
	}
	s.Registry = NewRegistry()
	s.Tracer = NewTracer()
	if c.Interval > 0 {
		s.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if c.ReportPath != "" {
		s.report = NewRunReport(command, args)
	}
	if c.MetricsAddr != "" {
		srv, err := s.Registry.Serve(c.MetricsAddr)
		if err != nil {
			return nil, err
		}
		s.server = srv
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars and /debug/pprof on http://%s\n", srv.Addr())
	}
	return s, nil
}

// HasEndpoint reports whether -metrics-addr bound an HTTP server this
// session, i.e. whether Handle can mount additional debug routes.
func (s *Session) HasEndpoint() bool { return s != nil && s.server != nil }

// Handle mounts handler at pattern on the session's HTTP endpoint (a
// no-op without one). qlog uses this to put /debug/qlog next to
// /metrics.
func (s *Session) Handle(pattern string, handler http.Handler) {
	if !s.HasEndpoint() {
		return
	}
	s.server.Handle(pattern, handler)
}

// -progress was set). Call it once the objects fn reads exist; fn may
// be nil for process vitals only.
func (s *Session) StartProgress(fn ProgressFunc) {
	if s == nil || s.Logger == nil || s.stopProgress != nil {
		return
	}
	s.stopProgress = StartProgress(s.Logger, s.interval, fn)
}

// Close stops the progress ticker, writes the run report, and shuts the
// HTTP endpoint down. It is idempotent, so it can be both deferred (for
// error paths) and called explicitly (to check the report write).
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	if s.stopProgress != nil {
		s.stopProgress()
	}
	var err error
	if s.report != nil {
		err = s.report.Finish(s.Registry, s.Tracer).WriteFile(s.reportPath)
	}
	if s.server != nil {
		if cerr := s.server.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
