package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file validates WritePrometheus against a strict reading of the
// text exposition format (version 0.0.4): metric-name and label-name
// charsets, label-value quoting, HELP/TYPE placement and uniqueness,
// sample grouping under the TYPE header, and cumulative histogram
// buckets ending in le="+Inf" with matching _sum/_count.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromLabels scans a `{k="v",...}` block, enforcing the quoting
// rules: values are double-quoted with only \\, \", and \n escapes.
func parsePromLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(s) {
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return nil, fmt.Errorf("label %q missing '='", s[i:])
		}
		name := s[i : i+j]
		if !promLabelRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %s, got %q", name, s[i:])
			}
			i++
		}
	}
	return labels, nil
}

func parsePromSample(line string) (promSample, error) {
	var sm promSample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return sm, fmt.Errorf("unbalanced braces in %q", line)
		}
		sm.name = line[:i]
		labels, err := parsePromLabels(line[i+1 : end])
		if err != nil {
			return sm, err
		}
		sm.labels = labels
		rest = strings.TrimPrefix(line[end+1:], " ")
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return sm, fmt.Errorf("sample %q has no value", line)
		}
		sm.name = line[:sp]
		sm.labels = map[string]string{}
		rest = line[sp+1:]
	}
	if !promNameRe.MatchString(sm.name) {
		return sm, fmt.Errorf("bad metric name %q", sm.name)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return sm, fmt.Errorf("sample %q: want exactly one value, got %v", line, fields)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sm, fmt.Errorf("sample %q: %v", line, err)
	}
	sm.value = v
	return sm, nil
}

// seriesKey identifies one labeled series, ignoring the histogram's
// per-bucket le label.
func seriesKey(sm promSample) string {
	pairs := make([]string, 0, len(sm.labels))
	for k, v := range sm.labels {
		if k == "le" {
			continue
		}
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return sm.name + "{" + strings.Join(pairs, ",") + "}"
}

// parsePromExposition applies the structural rules to a full payload and
// returns the samples. It fails the test on the first violation.
func parsePromExposition(t *testing.T, out string) []promSample {
	t.Helper()
	var (
		samples   []promSample
		helped    = map[string]bool{}
		typed     = map[string]string{} // base -> type
		sampled   = map[string]bool{}   // base has samples already
		current   string                // base the last TYPE header opened
		validType = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	)
	baseOf := func(name, typ string) string {
		if typ == "histogram" || typ == "summary" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(name, suf); b != name && typed[b] == typ {
					return b
				}
			}
		}
		return name
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				t.Fatalf("malformed comment line %q", line)
			}
			kind, name := fields[1], fields[2]
			switch kind {
			case "HELP":
				if !promNameRe.MatchString(name) {
					t.Fatalf("HELP for bad name %q", name)
				}
				if helped[name] {
					t.Fatalf("duplicate HELP for %s", name)
				}
				if typed[name] != "" || sampled[name] {
					t.Fatalf("HELP for %s after its TYPE or samples", name)
				}
				if len(fields) == 4 && strings.ContainsAny(fields[3], "\n") {
					t.Fatalf("HELP for %s contains raw newline", name)
				}
				helped[name] = true
			case "TYPE":
				if !promNameRe.MatchString(name) {
					t.Fatalf("TYPE for bad name %q", name)
				}
				if len(fields) != 4 || !validType[fields[3]] {
					t.Fatalf("bad TYPE line %q", line)
				}
				if typed[name] != "" {
					t.Fatalf("duplicate TYPE for %s", name)
				}
				if sampled[name] {
					t.Fatalf("TYPE for %s after its samples", name)
				}
				typed[name] = fields[3]
				current = name
			default:
				t.Fatalf("unknown comment keyword in %q", line)
			}
			continue
		}
		sm, err := parsePromSample(line)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		base := sm.name
		if typ := typed[current]; current != "" {
			if b := baseOf(sm.name, typ); b == current {
				base = b
			}
		}
		if base != current {
			t.Fatalf("sample %q outside its metric's TYPE group (current %s)", line, current)
		}
		sampled[base] = true
		samples = append(samples, sm)
	}
	for base := range helped {
		if typed[base] == "" {
			t.Fatalf("HELP for %s without a TYPE", base)
		}
	}
	return samples
}

// checkPromHistograms validates every histogram series: le on all
// buckets, cumulative counts, a final +Inf bucket equal to _count.
func checkPromHistograms(t *testing.T, samples []promSample) {
	t.Helper()
	type hist struct {
		lastLe   float64
		lastCum  float64
		infCount float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	series := map[string]*hist{}
	get := func(key string) *hist {
		h := series[key]
		if h == nil {
			h = &hist{lastLe: math.Inf(-1)}
			series[key] = h
		}
		return h
	}
	for _, sm := range samples {
		switch {
		case strings.HasSuffix(sm.name, "_bucket"):
			base := sm
			base.name = strings.TrimSuffix(sm.name, "_bucket")
			key := seriesKey(base)
			h := get(key)
			le, ok := sm.labels["le"]
			if !ok {
				t.Fatalf("bucket %s missing le label", key)
			}
			if le == "+Inf" {
				h.hasInf, h.infCount = true, sm.value
				if sm.value < h.lastCum {
					t.Fatalf("%s: +Inf bucket %v below cumulative %v", key, sm.value, h.lastCum)
				}
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: le=%q not a float: %v", key, le, err)
			}
			if h.hasInf {
				t.Fatalf("%s: bucket after +Inf", key)
			}
			if bound <= h.lastLe {
				t.Fatalf("%s: le %v not increasing past %v", key, bound, h.lastLe)
			}
			if sm.value < h.lastCum {
				t.Fatalf("%s: bucket count %v not cumulative past %v", key, sm.value, h.lastCum)
			}
			h.lastLe, h.lastCum = bound, sm.value
		case strings.HasSuffix(sm.name, "_count"):
			base := sm
			base.name = strings.TrimSuffix(sm.name, "_count")
			h := get(seriesKey(base))
			h.hasCount, h.count = true, sm.value
		}
	}
	checked := 0
	for key, h := range series {
		if !h.hasInf && !h.hasCount {
			continue // a counter that happens to end in _count, etc.
		}
		if !h.hasInf || !h.hasCount {
			t.Fatalf("%s: incomplete histogram (inf=%v count=%v)", key, h.hasInf, h.hasCount)
		}
		if h.infCount != h.count {
			t.Fatalf("%s: +Inf bucket %v != _count %v", key, h.infCount, h.count)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no histogram series validated")
	}
}

// TestWritePrometheusStrictFormat renders a registry shaped like the
// production ones — labeled counter shards, gauges, multiple labeled
// histograms, runtime GaugeFuncs — and runs the whole payload through
// the strict parser.
func TestWritePrometheusStrictFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("resolver_queries_total", "Queries resolved.").Add(100)
	for i := 0; i < 3; i++ {
		r.Counter(fmt.Sprintf(`resolver_shard_total{server="%d"}`, i), "Per-shard queries.").Add(uint64(10 * (i + 1)))
	}
	r.Gauge("pdns_store_bytes", "Store footprint.").Set(1.5e6)
	r.Gauge("clock_skew_s", "").Set(-0.25)
	for i := 0; i < 2; i++ {
		h := r.Histogram(fmt.Sprintf(`resolver_latency_ns{server="%d"}`, i), "Resolve latency.")
		for v := uint64(1); v < 1<<20; v <<= 3 {
			h.Observe(v)
		}
	}
	r.Histogram("empty_hist_ns", "Never observed.")
	r.GaugeFunc("custom_fn", "Computed.", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parsePromExposition(t, sb.String())
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}
	checkPromHistograms(t, samples)

	// Spot-check the parse itself recovered the registered values.
	byKey := map[string]float64{}
	for _, sm := range samples {
		byKey[seriesKey(sm)+"/"+sm.labels["le"]] = sm.value
	}
	if got := byKey[`resolver_shard_total{server=1}/`]; got != 20 {
		t.Errorf("shard 1 = %v, want 20", got)
	}
	if got := byKey["clock_skew_s{}/"]; got != -0.25 {
		t.Errorf("negative gauge = %v, want -0.25", got)
	}
}

// TestWritePrometheusMetricsEndpointStrict runs the strict parser over
// the real /metrics payload of a served registry, go_* runtime gauges
// and all.
func TestWritePrometheusMetricsEndpointStrict(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_total", "Things.").Add(1)
	r.Histogram("app_ns", "Latency.").Observe(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "go_goroutines") {
		t.Fatalf("runtime gauges missing from exposition:\n%s", out)
	}
	samples := parsePromExposition(t, out)
	checkPromHistograms(t, samples)
	names := map[string]bool{}
	for _, sm := range samples {
		names[sm.name] = true
	}
	for _, want := range []string{"app_total", "app_ns_sum", "app_ns_count", "go_goroutines"} {
		if !names[want] {
			t.Errorf("exposition missing %s", want)
		}
	}
}
