package telemetry

import (
	"fmt"
	"strings"
	"testing"

	"dnsnoise/internal/telemetry/promtext"
)

// This file validates WritePrometheus against a strict reading of the
// text exposition format (version 0.0.4). The parser itself lives in
// the importable promtext package so the fleet control plane and its
// tests can reuse it; these wrappers just adapt errors to the test.

func parsePromExposition(t *testing.T, out string) []promtext.Sample {
	t.Helper()
	samples, err := promtext.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func checkPromHistograms(t *testing.T, samples []promtext.Sample) {
	t.Helper()
	n, err := promtext.CheckHistograms(samples)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no histogram series validated")
	}
}

// TestWritePrometheusStrictFormat renders a registry shaped like the
// production ones — labeled counter shards, gauges, multiple labeled
// histograms, runtime GaugeFuncs — and runs the whole payload through
// the strict parser.
func TestWritePrometheusStrictFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("resolver_queries_total", "Queries resolved.").Add(100)
	for i := 0; i < 3; i++ {
		r.Counter(fmt.Sprintf(`resolver_shard_total{server="%d"}`, i), "Per-shard queries.").Add(uint64(10 * (i + 1)))
	}
	r.Gauge("pdns_store_bytes", "Store footprint.").Set(1.5e6)
	r.Gauge("clock_skew_s", "").Set(-0.25)
	for i := 0; i < 2; i++ {
		h := r.Histogram(fmt.Sprintf(`resolver_latency_ns{server="%d"}`, i), "Resolve latency.")
		for v := uint64(1); v < 1<<20; v <<= 3 {
			h.Observe(v)
		}
	}
	r.Histogram("empty_hist_ns", "Never observed.")
	r.GaugeFunc("custom_fn", "Computed.", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parsePromExposition(t, sb.String())
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}
	checkPromHistograms(t, samples)

	// Spot-check the parse itself recovered the registered values.
	byKey := map[string]float64{}
	for _, sm := range samples {
		byKey[promtext.SeriesKey(sm)+"/"+sm.Labels["le"]] = sm.Value
	}
	if got := byKey[`resolver_shard_total{server=1}/`]; got != 20 {
		t.Errorf("shard 1 = %v, want 20", got)
	}
	if got := byKey["clock_skew_s{}/"]; got != -0.25 {
		t.Errorf("negative gauge = %v, want -0.25", got)
	}
}

// TestWritePrometheusMetricsEndpointStrict runs the strict parser over
// the real /metrics payload of a served registry, go_* runtime gauges
// and all.
func TestWritePrometheusMetricsEndpointStrict(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_total", "Things.").Add(1)
	r.Histogram("app_ns", "Latency.").Observe(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "go_goroutines") {
		t.Fatalf("runtime gauges missing from exposition:\n%s", out)
	}
	samples := parsePromExposition(t, out)
	checkPromHistograms(t, samples)
	names := map[string]bool{}
	for _, sm := range samples {
		names[sm.Name] = true
	}
	for _, want := range []string{"app_total", "app_ns_sum", "app_ns_count", "go_goroutines"} {
		if !names[want] {
			t.Errorf("exposition missing %s", want)
		}
	}
}
