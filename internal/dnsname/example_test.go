package dnsname_test

import (
	"fmt"

	"dnsnoise/internal/dnsname"
)

// ExampleSuffixes_ETLDPlusOne shows effective-TLD-aware registrable-domain
// extraction, including the paper's dynamic-DNS correction.
func ExampleSuffixes_ETLDPlusOne() {
	s := dnsname.DefaultSuffixes()
	for _, name := range []string{
		"p2.tok.191742.i1.ds.ipv6-exp.l.google.com",
		"deep.chain.example.co.uk",
		"host.dyn.no-ip.com",
	} {
		fmt.Println(s.ETLDPlusOne(name))
	}
	// Output:
	// google.com
	// example.co.uk
	// dyn.no-ip.com
}

// ExampleNLD extracts N-th level domains as defined in Section III-B.
func ExampleNLD() {
	d := "a.example.com"
	fmt.Println(dnsname.NLD(d, 1))
	fmt.Println(dnsname.NLD(d, 2))
	fmt.Println(dnsname.NLD(d, 3))
	// Output:
	// com
	// example.com
	// a.example.com
}
