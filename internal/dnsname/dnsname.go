// Package dnsname provides domain-name manipulation used throughout the
// disposable-zone pipeline: normalization, label access, N-th level domain
// (NLD) extraction, and effective top-level domain (eTLD) computation against
// an embedded public-suffix snapshot.
//
// Terminology follows Section III-B of the paper: for
// d = "a.example.com", TLD(d) = "com", 2LD(d) = "example.com", and
// 3LD(d) = "a.example.com". The effective TLD captures delegation, not mere
// lexical splitting, so 2LD("www.example.co.uk") = "example.co.uk".
package dnsname

import (
	"errors"
	"strings"
	"unicode/utf8"
)

// Errors reported by name validation.
var (
	ErrEmpty      = errors.New("dnsname: empty domain name")
	ErrBadLabel   = errors.New("dnsname: invalid label")
	ErrNameLength = errors.New("dnsname: name exceeds 253 octets")
)

// MaxNameLength is the maximum presentation-format name length accepted,
// per RFC 1035 (255 octets on the wire, 253 in presentation format).
const MaxNameLength = 253

// MaxLabelLength is the maximum length of a single label per RFC 1035.
const MaxLabelLength = 63

// Normalize lower-cases a domain name and strips a single trailing dot.
// It performs no validation; see Validate.
//
// Normalize sits on the per-query hot path, so it is written to allocate
// nothing for already-normalized input (the overwhelmingly common case for
// generated and replayed workloads): a single scan classifies the name, a
// bare trailing dot is stripped by reslicing, and only a name that actually
// contains an upper-case ASCII letter pays one allocation for the lowered
// copy. Names with non-ASCII bytes take the full Unicode path, preserving
// strings.ToLower semantics.
func Normalize(name string) string {
	hasUpper := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= utf8.RuneSelf {
			// Rare: defer to the Unicode-correct (allocating) path.
			name = strings.ToLower(name)
			return strings.TrimSuffix(name, ".")
		}
		if 'A' <= c && c <= 'Z' {
			hasUpper = true
		}
	}
	if hasUpper {
		return normalizeASCIIUpper(name)
	}
	if len(name) > 0 && name[len(name)-1] == '.' {
		return name[:len(name)-1]
	}
	return name
}

// normalizeASCIIUpper lowers an all-ASCII name containing at least one
// upper-case letter and strips a single trailing dot, in one pass with one
// allocation.
func normalizeASCIIUpper(name string) string {
	n := len(name)
	if name[n-1] == '.' {
		n--
	}
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// Validate checks that name is a plausible DNS name in presentation format:
// non-empty, at most 253 octets, with labels of 1 to 63 octets each.
// It accepts names already passed through Normalize. Characters are not
// restricted to LDH because disposable domains routinely carry arbitrary
// token bytes; only structural rules are enforced.
func Validate(name string) error {
	if name == "" {
		return ErrEmpty
	}
	if len(name) > MaxNameLength {
		return ErrNameLength
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > MaxLabelLength {
			return ErrBadLabel
		}
	}
	return nil
}

// Labels returns the labels of a normalized name, left to right.
// The empty name yields nil.
func Labels(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels without allocating.
func CountLabels(name string) int {
	if name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// NLD returns the n rightmost labels of name joined by dots (the "N-th level
// domain"). If name has fewer than n labels, the whole name is returned.
// n <= 0 yields the empty string.
func NLD(name string, n int) string {
	if n <= 0 || name == "" {
		return ""
	}
	idx := len(name)
	for i := 0; i < n; i++ {
		dot := strings.LastIndexByte(name[:idx], '.')
		if dot < 0 {
			return name
		}
		idx = dot
	}
	return name[idx+1:]
}

// Parent returns the name with its leftmost label removed, or "" when the
// name has a single label.
func Parent(name string) string {
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		return ""
	}
	return name[dot+1:]
}

// LeftLabel returns the leftmost label of name.
func LeftLabel(name string) string {
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		return name
	}
	return name[:dot]
}

// IsSubdomainOf reports whether child is equal to, or a strict subdomain of,
// parent. Both must be normalized.
func IsSubdomainOf(child, parent string) bool {
	if parent == "" {
		return false
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// Suffixes holds an effective-TLD ruleset. The zero value matches nothing;
// use DefaultSuffixes or NewSuffixes.
type Suffixes struct {
	exact    map[string]struct{}
	wildcard map[string]struct{} // "*.ck" stored as "ck"
}

// NewSuffixes builds a ruleset from public-suffix-style rules. Supported rule
// forms are exact suffixes ("com", "co.uk") and wildcards ("*.compute.amazonaws.com",
// meaning every direct child of the suffix is itself a suffix). Exception
// rules ("!city.kobe.jp") are intentionally unsupported: they do not occur in
// the embedded snapshot.
func NewSuffixes(rules []string) *Suffixes {
	s := &Suffixes{
		exact:    make(map[string]struct{}, len(rules)),
		wildcard: make(map[string]struct{}),
	}
	for _, r := range rules {
		r = Normalize(strings.TrimSpace(r))
		if r == "" || strings.HasPrefix(r, "//") {
			continue
		}
		if rest, ok := strings.CutPrefix(r, "*."); ok {
			s.wildcard[rest] = struct{}{}
			continue
		}
		s.exact[r] = struct{}{}
	}
	return s
}

// DefaultSuffixes returns the embedded effective-TLD snapshot. It includes
// common gTLDs and ccTLDs, multi-label country suffixes (co.uk, com.cn, ...),
// and — per the paper's correction to Mozilla's list — popular dynamic-DNS
// zones, whose children are independently operated.
func DefaultSuffixes() *Suffixes {
	return NewSuffixes(defaultSuffixRules)
}

// ETLD returns the effective TLD of a normalized name, or "" when the name
// itself is a suffix or no rule matches any of its parents. When no rule
// matches at all, the rightmost label is used (the implicit "*" rule of the
// public suffix algorithm).
func (s *Suffixes) ETLD(name string) string {
	if name == "" {
		return ""
	}
	// Walk suffixes from the most specific: try name itself first (a name
	// that IS a suffix has no registrable part).
	best := ""
	for probe := name; probe != ""; probe = Parent(probe) {
		if _, ok := s.exact[probe]; ok {
			best = probe
			break
		}
		if parent := Parent(probe); parent != "" {
			if _, ok := s.wildcard[parent]; ok {
				best = probe
				break
			}
		}
	}
	if best == "" {
		// Implicit rule: rightmost label.
		best = NLD(name, 1)
	}
	return best
}

// ETLDPlusOne returns the registrable domain ("effective 2LD"): the effective
// TLD plus one additional label. It returns "" when name is itself a suffix
// or has no label to add.
func (s *Suffixes) ETLDPlusOne(name string) string {
	etld := s.ETLD(name)
	if etld == "" || name == etld {
		return ""
	}
	rest := strings.TrimSuffix(name, "."+etld)
	if rest == name {
		return "" // defensive: name did not actually end in etld
	}
	lastLabel := rest
	if dot := strings.LastIndexByte(rest, '.'); dot >= 0 {
		lastLabel = rest[dot+1:]
	}
	return lastLabel + "." + etld
}

// Depth returns the depth of name in the domain-name tree rooted at ".":
// the number of labels. (The paper's Figure 8 counts "a.example.com" as
// depth 3.)
func Depth(name string) int {
	return CountLabels(name)
}

// defaultSuffixRules is a compact snapshot of the public suffix list
// sufficient for the simulated namespace, extended with dynamic-DNS zones as
// the paper prescribes.
var defaultSuffixRules = []string{
	// Generic TLDs.
	"com", "net", "org", "edu", "gov", "mil", "int", "info", "biz", "name",
	"mobi", "pro", "aero", "coop", "museum", "travel", "jobs", "tel", "xxx",
	// Common ccTLDs (single label).
	"us", "ca", "mx", "de", "fr", "nl", "es", "it", "se", "no", "fi", "dk",
	"pl", "ru", "ch", "at", "be", "cz", "gr", "pt", "ie", "hu", "ro", "tr",
	"cn", "jp", "kr", "in", "tw", "hk", "sg", "my", "th", "vn", "id", "ph",
	"au", "nz", "br", "ar", "cl", "co", "pe", "ve", "za", "ng", "eg", "ke",
	"il", "sa", "ae", "ir", "ua", "by", "kz", "io", "me", "tv", "cc", "ws",
	"dk", "is", "lu", "sk", "si", "hr", "bg", "lt", "lv", "ee",
	// Multi-label country suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk", "sch.uk",
	"com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
	"com.au", "net.au", "org.au", "edu.au", "gov.au",
	"co.nz", "net.nz", "org.nz",
	"com.br", "net.br", "org.br",
	"co.in", "net.in", "org.in", "ac.in",
	"co.kr", "ne.kr", "or.kr",
	"com.tw", "org.tw", "net.tw",
	"com.hk", "org.hk", "net.hk",
	"com.sg", "org.sg", "net.sg",
	"com.mx", "org.mx", "net.mx",
	"com.ar", "net.ar", "org.ar",
	"co.za", "org.za", "net.za",
	"com.tr", "net.tr", "org.tr",
	"com.ru", "net.ru", "org.ru",
	// Cloud/hosting wildcard suffixes.
	"*.compute.amazonaws.com",
	"s3.amazonaws.com",
	"cloudfront.net",
	"herokuapp.com",
	"appspot.com",
	"github.io",
	// Dynamic DNS zones — the paper's correction to Mozilla's list: children
	// of these zones are delegated to unrelated parties.
	"dyndns.org", "dyndns.info", "dyndns.tv", "dnsalias.com", "dnsalias.net",
	"dnsalias.org", "homeip.net", "no-ip.com", "no-ip.org", "no-ip.info",
	"zapto.org", "hopto.org", "sytes.net", "ddns.net", "dynu.net",
	"afraid.org", "mine.nu", "homelinux.com", "homelinux.net", "homelinux.org",
	"homeunix.com", "homeunix.net", "homeunix.org", "selfip.com", "selfip.net",
	"selfip.org", "dontexist.com", "dontexist.net", "dontexist.org",
}
