package dnsname

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "WWW.Example.COM", want: "www.example.com"},
		{give: "example.com.", want: "example.com"},
		{give: "EXAMPLE.COM.", want: "example.com"},
		{give: "", want: ""},
		{give: ".", want: ""},
	}
	for _, tt := range tests {
		if got := Normalize(tt.give); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

// TestNormalizeMatchesReference: the single-pass implementation must agree
// byte-for-byte with the original ToLower+TrimSuffix composition on
// arbitrary input, including non-ASCII.
func TestNormalizeMatchesReference(t *testing.T) {
	ref := func(name string) string {
		return strings.TrimSuffix(strings.ToLower(name), ".")
	}
	for _, name := range []string{
		"", ".", "..", "a", "A", "a.", "A.", "aBc.DeF.com", "already.normal.com",
		"trailing.dot.", "MIXED.case.", "Ünïcode.ÉXAMPLE.com", "ünïcode.com",
		"123.456", "UPPER", "x.Y.z.W.", "ÀÈÌ.com.",
	} {
		if got, want := Normalize(name), ref(name); got != want {
			t.Errorf("Normalize(%q) = %q, reference = %q", name, got, want)
		}
	}
	f := func(name string) bool { return Normalize(name) == ref(name) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestNormalizeZeroAlloc: already-normalized names — the hot-path case —
// and bare trailing-dot names must not allocate; a mixed-case ASCII name
// pays exactly one allocation.
func TestNormalizeZeroAlloc(t *testing.T) {
	for _, name := range []string{"host1.example.com", "host1.example.com.", "", "a"} {
		name := name
		if allocs := testing.AllocsPerRun(200, func() { Normalize(name) }); allocs != 0 {
			t.Errorf("Normalize(%q) allocated %.1f times per op, want 0", name, allocs)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() { Normalize("HOST1.Example.COM.") }); allocs > 1 {
		t.Errorf("mixed-case Normalize allocated %.1f times per op, want <= 1", allocs)
	}
}

func TestValidate(t *testing.T) {
	long := strings.Repeat("a", 64)
	tests := []struct {
		name    string
		give    string
		wantErr error
	}{
		{name: "ok", give: "www.example.com", wantErr: nil},
		{name: "empty", give: "", wantErr: ErrEmpty},
		{name: "empty label", give: "a..b", wantErr: ErrBadLabel},
		{name: "long label", give: long + ".com", wantErr: ErrBadLabel},
		{name: "long name", give: strings.Repeat("abcdefgh.", 30) + "com", wantErr: ErrNameLength},
		{name: "single label", give: "localhost", wantErr: nil},
		{name: "token bytes ok", give: "load-0-p-01.up-1852280.example.com", wantErr: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Validate(tt.give)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate(%q) = %v, want %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestLabels(t *testing.T) {
	got := Labels("a.b.c")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Labels[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if Labels("") != nil {
		t.Error("Labels(\"\") should be nil")
	}
}

func TestCountLabels(t *testing.T) {
	tests := []struct {
		give string
		want int
	}{
		{give: "", want: 0},
		{give: "com", want: 1},
		{give: "example.com", want: 2},
		{give: "a.b.c.d.e", want: 5},
	}
	for _, tt := range tests {
		if got := CountLabels(tt.give); got != tt.want {
			t.Errorf("CountLabels(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestNLD(t *testing.T) {
	const name = "p2.a22.i1.ds.ipv6-exp.l.google.com"
	tests := []struct {
		n    int
		want string
	}{
		{n: 0, want: ""},
		{n: 1, want: "com"},
		{n: 2, want: "google.com"},
		{n: 3, want: "l.google.com"},
		{n: 8, want: name},
		{n: 99, want: name},
	}
	for _, tt := range tests {
		if got := NLD(name, tt.n); got != tt.want {
			t.Errorf("NLD(%q, %d) = %q, want %q", name, tt.n, got, tt.want)
		}
	}
}

// Property: NLD(name, n) is a suffix of name with exactly min(n, labels)
// labels.
func TestNLDProperty(t *testing.T) {
	f := func(rawLabels []uint8, n uint8) bool {
		if len(rawLabels) == 0 {
			return true
		}
		labels := make([]string, 0, len(rawLabels))
		for _, b := range rawLabels {
			labels = append(labels, strings.Repeat("x", int(b%5)+1))
		}
		name := strings.Join(labels, ".")
		k := int(n%10) + 1
		got := NLD(name, k)
		if !strings.HasSuffix(name, got) {
			return false
		}
		wantLabels := k
		if len(labels) < k {
			wantLabels = len(labels)
		}
		return CountLabels(got) == wantLabels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParentLeftLabel(t *testing.T) {
	if got := Parent("a.b.c"); got != "b.c" {
		t.Errorf("Parent = %q, want b.c", got)
	}
	if got := Parent("c"); got != "" {
		t.Errorf("Parent(single) = %q, want \"\"", got)
	}
	if got := LeftLabel("a.b.c"); got != "a" {
		t.Errorf("LeftLabel = %q, want a", got)
	}
	if got := LeftLabel("c"); got != "c" {
		t.Errorf("LeftLabel(single) = %q, want c", got)
	}
}

func TestIsSubdomainOf(t *testing.T) {
	tests := []struct {
		child, parent string
		want          bool
	}{
		{child: "a.example.com", parent: "example.com", want: true},
		{child: "example.com", parent: "example.com", want: true},
		{child: "badexample.com", parent: "example.com", want: false},
		{child: "example.com", parent: "a.example.com", want: false},
		{child: "a.example.com", parent: "", want: false},
	}
	for _, tt := range tests {
		if got := IsSubdomainOf(tt.child, tt.parent); got != tt.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %v, want %v", tt.child, tt.parent, got, tt.want)
		}
	}
}

func TestETLD(t *testing.T) {
	s := DefaultSuffixes()
	tests := []struct {
		give string
		want string
	}{
		{give: "www.example.com", want: "com"},
		{give: "www.example.co.uk", want: "co.uk"},
		{give: "a.b.example.com.cn", want: "com.cn"},
		{give: "host.no-ip.com", want: "no-ip.com"},
		{give: "com", want: "com"},
		{give: "weird.unknowntld", want: "unknowntld"},
		{give: "x.y.eu-west-1.compute.amazonaws.com", want: "eu-west-1.compute.amazonaws.com"},
	}
	for _, tt := range tests {
		if got := s.ETLD(tt.give); got != tt.want {
			t.Errorf("ETLD(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestETLDPlusOne(t *testing.T) {
	s := DefaultSuffixes()
	tests := []struct {
		give string
		want string
	}{
		{give: "www.example.com", want: "example.com"},
		{give: "a.b.example.co.uk", want: "example.co.uk"},
		{give: "host.dyn.no-ip.com", want: "dyn.no-ip.com"},
		{give: "com", want: ""},
		{give: "co.uk", want: ""},
		{give: "example.com", want: "example.com"},
		{give: "vm.zone1.eu-west-1.compute.amazonaws.com", want: "zone1.eu-west-1.compute.amazonaws.com"},
	}
	for _, tt := range tests {
		if got := s.ETLDPlusOne(tt.give); got != tt.want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestETLDEmpty(t *testing.T) {
	s := DefaultSuffixes()
	if got := s.ETLD(""); got != "" {
		t.Errorf("ETLD(\"\") = %q, want \"\"", got)
	}
	if got := s.ETLDPlusOne(""); got != "" {
		t.Errorf("ETLDPlusOne(\"\") = %q, want \"\"", got)
	}
}

func TestNewSuffixesSkipsComments(t *testing.T) {
	s := NewSuffixes([]string{"// a comment", "", "com", "*.ck"})
	if got := s.ETLD("shop.example.com"); got != "com" {
		t.Errorf("ETLD = %q, want com", got)
	}
	if got := s.ETLD("www.city.ck"); got != "city.ck" {
		t.Errorf("wildcard ETLD = %q, want city.ck", got)
	}
}

// Property: ETLDPlusOne(x) is always a suffix of x and a subdomain of
// ETLD(x), with exactly one more label than the eTLD.
func TestETLDPlusOneProperty(t *testing.T) {
	s := DefaultSuffixes()
	names := []string{
		"www.google.com", "avqs.mcafee.com", "x.y.z.esoft.com",
		"deep.chain.of.labels.example.co.uk", "a.b.c.d.e.f.g.sytes.net",
		"one.two.example.org", "cdn1.akamai.net",
	}
	for _, name := range names {
		e1 := s.ETLDPlusOne(name)
		if e1 == "" {
			t.Errorf("ETLDPlusOne(%q) empty", name)
			continue
		}
		if !IsSubdomainOf(name, e1) {
			t.Errorf("%q not subdomain of its e2LD %q", name, e1)
		}
		etld := s.ETLD(name)
		if CountLabels(e1) != CountLabels(etld)+1 {
			t.Errorf("e2LD %q should have one more label than eTLD %q", e1, etld)
		}
	}
}

func TestDepth(t *testing.T) {
	if got := Depth("a.example.com"); got != 3 {
		t.Errorf("Depth = %d, want 3 (paper Figure 8 convention)", got)
	}
	if got := Depth("i.1.a.example.com"); got != 5 {
		t.Errorf("Depth = %d, want 5", got)
	}
}
