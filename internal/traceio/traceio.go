// Package traceio serializes query traces as JSON Lines, so generated
// workloads can be stored, inspected, and replayed by the CLI tools.
package traceio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"dnsnoise/internal/cache"
	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/resolver"
)

// ErrBadEvent reports a malformed trace line.
var ErrBadEvent = errors.New("traceio: malformed event")

// Event is one serialized query.
type Event struct {
	// Time is RFC 3339 with sub-second precision.
	Time time.Time `json:"ts"`
	// Client is the anonymized client ID.
	Client uint32 `json:"client"`
	// Name is the queried domain name.
	Name string `json:"name"`
	// Type is the query type mnemonic ("A", "AAAA", ...).
	Type string `json:"type"`
	// Disposable carries the generator's ground-truth label.
	Disposable bool `json:"disposable"`
}

// FromQuery converts a resolver query to its serialized form.
func FromQuery(q resolver.Query) Event {
	return Event{
		Time:       q.Time,
		Client:     q.ClientID,
		Name:       q.Name,
		Type:       q.Type.String(),
		Disposable: q.Category == cache.CategoryDisposable,
	}
}

// ToQuery converts a deserialized event back to a resolver query.
func (e Event) ToQuery() (resolver.Query, error) {
	typ, err := dnsmsg.ParseType(e.Type)
	if err != nil {
		return resolver.Query{}, fmt.Errorf("%w: %v", ErrBadEvent, err)
	}
	cat := cache.CategoryOther
	if e.Disposable {
		cat = cache.CategoryDisposable
	}
	return resolver.Query{
		Time:     e.Time,
		ClientID: e.Client,
		Name:     e.Name,
		Type:     typ,
		Category: cat,
	}, nil
}

// Writer emits events as JSON lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event.
func (w *Writer) Write(e Event) error {
	if err := w.enc.Encode(e); err != nil {
		return fmt.Errorf("traceio: write event: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer; call before closing the underlying writer.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("traceio: flush: %w", err)
	}
	return nil
}

// Reader parses JSON-line events.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next event, or io.EOF when the trace is exhausted.
func (r *Reader) Next() (Event, error) {
	for r.sc.Scan() {
		r.line++
		raw := r.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return Event{}, fmt.Errorf("%w: line %d: %v", ErrBadEvent, r.line, err)
		}
		if e.Name == "" || e.Type == "" {
			return Event{}, fmt.Errorf("%w: line %d: missing name or type", ErrBadEvent, r.line)
		}
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, fmt.Errorf("traceio: scan: %w", err)
	}
	return Event{}, io.EOF
}
