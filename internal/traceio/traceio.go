// Package traceio serializes query traces as JSON Lines, so generated
// workloads can be stored, inspected, and replayed by the CLI tools.
// Traces may be gzip-compressed: readers sniff the gzip magic bytes
// regardless of file name, and the path helpers compress anything whose
// name ends in ".gz".
package traceio

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dnsnoise/internal/cache"
	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/resolver"
)

// ErrBadEvent reports a malformed trace line.
var ErrBadEvent = errors.New("traceio: malformed event")

// ErrLineTooLong reports a trace line exceeding maxLineBytes.
var ErrLineTooLong = errors.New("traceio: line exceeds 1 MB cap")

// maxLineBytes caps a single trace line; a well-formed event is a few
// hundred bytes, so anything past this is a corrupt or hostile input.
const maxLineBytes = 1 << 20

// Event is one serialized query.
type Event struct {
	// Time is RFC 3339 with sub-second precision.
	Time time.Time `json:"ts"`
	// Client is the anonymized client ID.
	Client uint32 `json:"client"`
	// Name is the queried domain name.
	Name string `json:"name"`
	// Type is the query type mnemonic ("A", "AAAA", ...).
	Type string `json:"type"`
	// Disposable carries the generator's ground-truth label.
	Disposable bool `json:"disposable"`
}

// FromQuery converts a resolver query to its serialized form.
func FromQuery(q resolver.Query) Event {
	return Event{
		Time:       q.Time,
		Client:     q.ClientID,
		Name:       q.Name,
		Type:       q.Type.String(),
		Disposable: q.Category == cache.CategoryDisposable,
	}
}

// ToQuery converts a deserialized event back to a resolver query.
func (e Event) ToQuery() (resolver.Query, error) {
	typ, err := dnsmsg.ParseType(e.Type)
	if err != nil {
		return resolver.Query{}, fmt.Errorf("%w: %v", ErrBadEvent, err)
	}
	cat := cache.CategoryOther
	if e.Disposable {
		cat = cache.CategoryDisposable
	}
	return resolver.Query{
		Time:     e.Time,
		ClientID: e.Client,
		Name:     e.Name,
		Type:     typ,
		Category: cat,
	}, nil
}

// Writer emits events as JSON lines, optionally through a gzip layer.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	gz  *gzip.Writer
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// NewGzipWriter wraps w in a gzip-compressing trace writer. Close (or
// Flush) must be called to terminate the gzip stream.
func NewGzipWriter(w io.Writer) *Writer {
	gz := gzip.NewWriter(w)
	tw := NewWriter(gz)
	tw.gz = gz
	return tw
}

// Write appends one event.
func (w *Writer) Write(e Event) error {
	if err := w.enc.Encode(e); err != nil {
		return fmt.Errorf("traceio: write event: %w", err)
	}
	w.n++
	return nil
}

// Consume appends one query, satisfying the ingest pipeline's query-sink
// contract: a trace writer is an output module for the raw query stream.
func (w *Writer) Consume(q resolver.Query) error {
	return w.Write(FromQuery(q))
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer (and terminates the gzip stream, when present);
// call before closing the underlying writer.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("traceio: flush: %w", err)
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return fmt.Errorf("traceio: close gzip: %w", err)
		}
		w.gz = nil
	}
	return nil
}

// Reader parses JSON-line events. The input is sniffed for the gzip magic
// bytes on the first read and decompressed transparently.
type Reader struct {
	raw     io.Reader
	sc      *bufio.Scanner
	line    int
	initErr error
}

// NewReader wraps r. Compression is detected lazily on the first Next call.
func NewReader(r io.Reader) *Reader {
	return &Reader{raw: r}
}

// init sniffs the stream head for the gzip magic and builds the line
// scanner over the (possibly decompressed) byte stream.
func (r *Reader) init() error {
	if r.sc != nil || r.initErr != nil {
		return r.initErr
	}
	br := bufio.NewReaderSize(r.raw, 1<<16)
	var src io.Reader = br
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			r.initErr = fmt.Errorf("traceio: open gzip stream: %w", err)
			return r.initErr
		}
		src = gz
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<16), maxLineBytes)
	r.sc = sc
	return nil
}

// Next returns the next event, or io.EOF when the trace is exhausted.
func (r *Reader) Next() (Event, error) {
	if err := r.init(); err != nil {
		return Event{}, err
	}
	for r.sc.Scan() {
		r.line++
		raw := r.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return Event{}, fmt.Errorf("%w: line %d: %v", ErrBadEvent, r.line, err)
		}
		if e.Name == "" || e.Type == "" {
			return Event{}, fmt.Errorf("%w: line %d: missing name or type", ErrBadEvent, r.line)
		}
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return Event{}, fmt.Errorf("%w (after line %d)", ErrLineTooLong, r.line)
		}
		return Event{}, fmt.Errorf("traceio: scan: %w", err)
	}
	return Event{}, io.EOF
}

// OpenPath opens a trace file for reading — "-" means stdin — sniffing
// gzip transparently. The returned close function releases the file handle.
func OpenPath(path string) (*Reader, func() error, error) {
	if path == "-" {
		return NewReader(os.Stdin), func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return NewReader(f), f.Close, nil
}

// CreatePath creates a trace file for writing — "-" means stdout — gzip
// compressing when the name ends in ".gz". The returned close function
// flushes the writer (terminating any gzip stream) and closes the file.
func CreatePath(path string) (*Writer, func() error, error) {
	var (
		f     *os.File
		toEnd func() error
	)
	if path == "-" {
		f, toEnd = os.Stdout, func() error { return nil }
	} else {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		toEnd = f.Close
	}
	var w *Writer
	if strings.HasSuffix(path, ".gz") {
		w = NewGzipWriter(f)
	} else {
		w = NewWriter(f)
	}
	return w, func() error {
		if err := w.Flush(); err != nil {
			toEnd()
			return err
		}
		return toEnd()
	}, nil
}
