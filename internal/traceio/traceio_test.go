package traceio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dnsnoise/internal/cache"
	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/resolver"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	queries := []resolver.Query{
		{
			Time:     time.Date(2011, 12, 1, 8, 30, 0, 0, time.UTC),
			ClientID: 42,
			Name:     "www.example.com",
			Type:     dnsmsg.TypeA,
			Category: cache.CategoryOther,
		},
		{
			Time:     time.Date(2011, 12, 1, 8, 30, 1, 0, time.UTC),
			ClientID: 7,
			Name:     "tok123.avqs.mcafee.com",
			Type:     dnsmsg.TypeAAAA,
			Category: cache.CategoryDisposable,
		},
	}
	for _, q := range queries {
		if err := w.Write(FromQuery(q)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d, want 2", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	for i, want := range queries {
		ev, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		got, err := ev.ToQuery()
		if err != nil {
			t.Fatalf("ToQuery %d: %v", i, err)
		}
		if !got.Time.Equal(want.Time) || got.ClientID != want.ClientID ||
			got.Name != want.Name || got.Type != want.Type || got.Category != want.Category {
			t.Errorf("query %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after trace end: %v, want io.EOF", err)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	input := `{"ts":"2011-12-01T00:00:00Z","client":1,"name":"a.test","type":"A","disposable":false}

{"ts":"2011-12-01T00:00:01Z","client":2,"name":"b.test","type":"A","disposable":true}
`
	r := NewReader(strings.NewReader(input))
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("events = %d, want 2", n)
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{name: "bad json", input: "{not json}\n"},
		{name: "missing name", input: `{"ts":"2011-12-01T00:00:00Z","client":1,"type":"A"}` + "\n"},
		{name: "missing type", input: `{"ts":"2011-12-01T00:00:00Z","client":1,"name":"a.test"}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tt.input))
			if _, err := r.Next(); !errors.Is(err, ErrBadEvent) {
				t.Errorf("Next = %v, want ErrBadEvent", err)
			}
		})
	}
}

func TestGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewGzipWriter(&buf)
	want := Event{
		Time:   time.Date(2011, 12, 1, 0, 0, 0, 123456789, time.UTC),
		Client: 9, Name: "tok.avqs.mcafee.com", Type: "A", Disposable: true,
	}
	if err := w.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if head := buf.Bytes()[:2]; head[0] != 0x1f || head[1] != 0x8b {
		t.Fatalf("output does not start with gzip magic: %x", head)
	}
	// The reader detects compression by sniffing, not by being told.
	r := NewReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(want.Time) || got.Name != want.Name || !got.Disposable {
		t.Errorf("event = %+v, want %+v", got, want)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after trace end: %v, want io.EOF", err)
	}
}

func TestCreateOpenPathGzipByExtension(t *testing.T) {
	for _, name := range []string{"trace.jsonl", "trace.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			w, closeW, err := CreatePath(path)
			if err != nil {
				t.Fatal(err)
			}
			q := resolver.Query{
				Time:     time.Date(2011, 12, 1, 8, 0, 0, 0, time.UTC),
				ClientID: 3, Name: "www.example.com", Type: dnsmsg.TypeA,
			}
			if err := w.Consume(q); err != nil {
				t.Fatal(err)
			}
			if err := closeW(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			gzipped := len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b
			if wantGz := strings.HasSuffix(name, ".gz"); gzipped != wantGz {
				t.Errorf("gzipped = %v, want %v", gzipped, wantGz)
			}
			r, closeR, err := OpenPath(path)
			if err != nil {
				t.Fatal(err)
			}
			defer closeR()
			ev, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if ev.Name != q.Name {
				t.Errorf("name = %q, want %q", ev.Name, q.Name)
			}
		})
	}
}

func TestReaderLineTooLong(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"ts":"2011-12-01T00:00:00Z","client":1,"name":"a.test","type":"A"}` + "\n")
	buf.WriteString(`{"name":"` + strings.Repeat("x", maxLineBytes+16) + "\n")
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatalf("first line: %v", err)
	}
	_, err := r.Next()
	if !errors.Is(err, ErrLineTooLong) {
		t.Errorf("oversized line: %v, want ErrLineTooLong", err)
	}
	if err != nil && !strings.Contains(err.Error(), "after line 1") {
		t.Errorf("error lacks line context: %v", err)
	}
}

func TestReaderCorruptGzip(t *testing.T) {
	// Valid magic, truncated stream: init must fail with a useful error.
	r := NewReader(bytes.NewReader([]byte{0x1f, 0x8b}))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("corrupt gzip head: %v, want error", err)
	}
}

func TestToQueryRejectsUnknownType(t *testing.T) {
	e := Event{Name: "x.test", Type: "BOGUS"}
	if _, err := e.ToQuery(); !errors.Is(err, ErrBadEvent) {
		t.Errorf("ToQuery = %v, want ErrBadEvent", err)
	}
}
