//go:build !linux || !(amd64 || arm64)

package udptransport

import "net"

// batchSyscalls is false where recvmmsg/sendmmsg are unavailable (or the
// kernel struct layout is unverified): every batch size degrades to the
// portable one-datagram-per-syscall path.
const batchSyscalls = false

func newPacketIO(conn *net.UDPConn, slots []pktBuf, rx []byte) packetIO {
	return newSingleIO(conn, slots, rx)
}
