package udptransport

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/telemetry"
)

// TestTCPExchange speaks the framed protocol straight at the fallback
// listener: length-prefixed query in, length-prefixed response out, and a
// second query on the same connection to prove it stays open.
func TestTCPExchange(t *testing.T) {
	srv, err := Serve(testAuthority(t), "", WithTCP())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.TCPAddr() == "" {
		t.Fatal("WithTCP gave no TCP address")
	}
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second), WithTCPFallback())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i, name := range []string{"www.udp.test", "missing.udp.test"} {
		wire, err := dnsmsg.NewQuery(uint16(40+i), name, dnsmsg.TypeA).Encode()
		if err != nil {
			t.Fatal(err)
		}
		respWire, err := client.exchangeTCP(wire)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := dnsmsg.Decode(respWire)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != uint16(40+i) {
			t.Errorf("query %d: response ID %#x, want %#x", i, resp.Header.ID, 40+i)
		}
	}
}

// TestTCPFallbackRetriesTruncated is the TC=1 contract end to end: a
// response too big for UDP comes back truncated, the fallback client
// retries over TCP, and the caller sees the whole answer.
func TestTCPFallbackRetriesTruncated(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := Serve(bigResponder{records: 40}, "", WithTCP(), WithServerMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Without the fallback: the truncated UDP response, as before.
	plain, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	wire, err := dnsmsg.NewQuery(0x90, "big.udp.test", dnsmsg.TypeTXT).Encode()
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := plain.HandleWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := dnsmsg.Decode(respWire); err != nil || !resp.Header.Truncated {
		t.Fatalf("plain client: truncated=%v err=%v, want TC=1", resp.Header.Truncated, err)
	}

	// With the fallback: the same query lands whole via TCP.
	fb, err := NewClient(srv.Addr(), WithTimeout(time.Second), WithTCPFallback())
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	respWire, err = fb.HandleWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Error("fallback client still saw TC=1")
	}
	if len(resp.Answers) != 40 {
		t.Errorf("fallback client got %d answers, want 40", len(resp.Answers))
	}
	snap := reg.Snapshot()
	if got := snap.Counter("tcp_connections_total"); got != 1 {
		t.Errorf("tcp_connections_total = %d, want 1", got)
	}
	if got := snap.Counter("tcp_queries_total"); got != 1 {
		t.Errorf("tcp_queries_total = %d, want 1", got)
	}
}

// TestTCPRuntFrameHangsUp: a frame shorter than a DNS header closes the
// connection without an answer, like the UDP malformed gate.
func TestTCPRuntFrameHangsUp(t *testing.T) {
	srv, err := Serve(testAuthority(t), "", WithTCP())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], 5)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	// The server hangs up without answering; unread payload bytes may turn
	// the FIN into a RST, so any non-timeout error counts as the hang-up.
	_, err = conn.Read(hdr[:])
	if err == nil {
		t.Fatal("server answered a runt frame")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server kept a runt-frame connection open: %v", err)
	}
}

// TestTCPCloseCutsOpenConnections: Close must not wait out the idle
// deadline on a parked connection.
func TestTCPCloseCutsOpenConnections(t *testing.T) {
	srv, err := Serve(testAuthority(t), "", WithTCP())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Give the accept loop a moment to register the connection.
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung on an idle TCP connection")
	}
}
