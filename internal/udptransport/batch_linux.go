//go:build linux && (amd64 || arm64)

package udptransport

import (
	"net"
	"syscall"
	"unsafe"
)

// batchSyscalls reports that this build amortizes syscall cost with
// recvmmsg/sendmmsg: one kernel crossing moves a whole batch of datagrams.
const batchSyscalls = true

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: a msghdr
// plus the per-message byte count the kernel fills in (received length on
// recvmmsg, transmitted length on sendmmsg), padded to pointer alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// sockaddrBufLen fits any address family the socket can produce
// (sockaddr_in6 is the largest UDP case).
const sockaddrBufLen = syscall.SizeofSockaddrInet6

// mmsgIO is the Linux batched packetIO. All syscall argument structures —
// iovecs, msghdrs, sockaddr storage — are preallocated per slot and rearmed
// in place before each call, so recv and send never allocate. The syscalls
// run nonblocking inside the runtime poller's RawConn callbacks: EAGAIN
// parks the goroutine on the netpoller instead of spinning, and a closed
// socket surfaces as the callback error, exactly like a blocking read.
type mmsgIO struct {
	rc    syscall.RawConn
	slots []pktBuf
	rx    []byte
	names [][sockaddrBufLen]byte
	rhdrs []mmsghdr
	riovs []syscall.Iovec
	shdrs []mmsghdr
	siovs []syscall.Iovec
	sidx  []int // shdrs[i] transmits slots[sidx[i]]

	// The RawConn callbacks are bound once here: a closure literal passed
	// to rc.Read on every call would escape together with its captured
	// result variables, putting allocations back on the per-packet path.
	// Call state flows through the fields below instead.
	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
	res     int           // packets moved by the last syscall
	errno   syscall.Errno // errno of the last syscall
	soff    int           // sendmmsg window into shdrs
	scnt    int
}

// newPacketIO selects the batched path for batch > 1 and the portable
// single-packet path for batch == 1, keeping the two syscall disciplines
// comparable under one flag.
func newPacketIO(conn *net.UDPConn, slots []pktBuf, rx []byte) packetIO {
	if len(slots) <= 1 {
		return newSingleIO(conn, slots, rx)
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return newSingleIO(conn, slots, rx)
	}
	n := len(slots)
	m := &mmsgIO{
		rc:    rc,
		slots: slots,
		rx:    rx,
		names: make([][sockaddrBufLen]byte, n),
		rhdrs: make([]mmsghdr, n),
		riovs: make([]syscall.Iovec, n),
		shdrs: make([]mmsghdr, n),
		siovs: make([]syscall.Iovec, n),
		sidx:  make([]int, n),
	}
	m.readFn = m.recvmmsg
	m.writeFn = m.sendmmsg
	return m
}

// recvmmsg is the rc.Read callback: one nonblocking recvmmsg, parking on
// the netpoller on EAGAIN.
func (m *mmsgIO) recvmmsg(fd uintptr) bool {
	r1, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&m.rhdrs[0])), uintptr(len(m.rhdrs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if e == syscall.EAGAIN {
		return false // park on the netpoller until readable
	}
	m.res, m.errno = int(r1), e
	return true
}

// sendmmsg is the rc.Write callback: transmit the shdrs[soff:scnt] window.
func (m *mmsgIO) sendmmsg(fd uintptr) bool {
	r1, _, e := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&m.shdrs[m.soff])), uintptr(m.scnt-m.soff),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if e == syscall.EAGAIN {
		return false // park until the send buffer drains
	}
	m.res, m.errno = int(r1), e
	return true
}

func (m *mmsgIO) recv() (int, error) {
	// Rearm every header: the kernel overwrites Namelen and the length
	// field on each call.
	for i := range m.rhdrs {
		m.riovs[i] = syscall.Iovec{Base: &m.rx[i*maxPacket], Len: maxPacket}
		h := &m.rhdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    &m.names[i][0],
			Namelen: sockaddrBufLen,
			Iov:     &m.riovs[i],
			Iovlen:  1,
		}
		h.len = 0
	}
	if err := m.rc.Read(m.readFn); err != nil {
		return 0, err
	}
	if m.errno != 0 {
		return 0, m.errno
	}
	got := m.res
	for i := 0; i < got; i++ {
		m.slots[i].in = m.rx[i*maxPacket : i*maxPacket+int(m.rhdrs[i].len)]
	}
	return got, nil
}

func (m *mmsgIO) send(n int) (pkts, bytes uint64, err error) {
	// Compact the responding slots into the send headers, echoing each
	// datagram's source sockaddr back as the destination.
	cnt := 0
	for i := 0; i < n; i++ {
		b := &m.slots[i]
		if !b.send {
			continue
		}
		m.siovs[cnt] = syscall.Iovec{Base: &b.out[0], Len: uint64(len(b.out))}
		h := &m.shdrs[cnt]
		h.hdr = syscall.Msghdr{
			Name:    &m.names[i][0],
			Namelen: m.rhdrs[i].hdr.Namelen,
			Iov:     &m.siovs[cnt],
			Iovlen:  1,
		}
		h.len = 0
		m.sidx[cnt] = i
		cnt++
	}
	m.scnt = cnt
	for off := 0; off < cnt; {
		m.soff = off
		if werr := m.rc.Write(m.writeFn); werr != nil {
			return pkts, bytes, werr
		}
		sent := m.res
		if m.errno != 0 || sent == 0 {
			// A per-destination failure poisons the head message; skip it
			// and keep transmitting the rest. Best effort, like the
			// single-packet path: a lost response is the client's problem.
			off++
			continue
		}
		for i := off; i < off+sent; i++ {
			pkts++
			bytes += uint64(m.shdrs[i].len)
		}
		off += sent
	}
	return pkts, bytes, nil
}
