//go:build !linux

package udptransport

import (
	"errors"
	"net"
)

// reuseportAvailable is false off Linux: WithListeners(n>1) silently falls
// back to a single socket (Server.Listeners reports the real count).
// Darwin and the BSDs do have SO_REUSEPORT, but without the kernel's
// flow-steering semantics several sockets would just race for datagrams;
// the portable build keeps the simple, correct single-listener shape.
const reuseportAvailable = false

// listenReusePort is never called when reuseportAvailable is false; it
// exists so the package compiles on every platform.
func listenReusePort(addr string) (*net.UDPConn, error) {
	return nil, errors.New("udptransport: SO_REUSEPORT not supported on this platform")
}
