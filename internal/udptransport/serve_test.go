package udptransport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnsnoise/internal/dnsmsg"
)

// recordingHandler counts how many queries actually reach the wrapped
// handler.
type recordingHandler struct {
	inner Handler
	calls atomic.Uint64
}

func (r *recordingHandler) HandleWire(query []byte) ([]byte, error) {
	r.calls.Add(1)
	return r.inner.HandleWire(query)
}

// expectedListeners is what Serve(WithListeners(n)) actually opens on this
// platform.
func expectedListeners(n int) int {
	if reuseportAvailable {
		return n
	}
	return 1
}

func TestConcurrentListenersAndClients(t *testing.T) {
	// The multi-core front door under -race: several SO_REUSEPORT listener
	// workers (where available) answering several concurrent clients, each
	// with its own socket. Every response must match its query's ID and
	// carry the right answer regardless of which listener served it.
	srv, err := Serve(testAuthority(t), "", WithListeners(4), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got, want := srv.Listeners(), expectedListeners(4); got != want {
		t.Fatalf("Listeners() = %d, want %d", got, want)
	}
	const clients, queries = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := NewClient(srv.Addr(), WithTimeout(2*time.Second), WithRetries(2))
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < queries; i++ {
				qid := uint16(id*queries + i + 1)
				q := dnsmsg.NewQuery(qid, "www.udp.test", dnsmsg.TypeA)
				wire, err := q.Encode()
				if err != nil {
					errs <- err
					return
				}
				respWire, err := client.HandleWire(wire)
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", id, i, err)
					return
				}
				resp, err := dnsmsg.Decode(respWire)
				if err != nil {
					errs <- err
					return
				}
				if resp.Header.ID != qid {
					errs <- fmt.Errorf("client %d: ID = %#x, want %#x", id, resp.Header.ID, qid)
					return
				}
				if len(resp.Answers) != 1 || resp.Answers[0].RData != "198.18.0.7" {
					errs <- fmt.Errorf("client %d: answers = %+v", id, resp.Answers)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestListenersSharePort(t *testing.T) {
	srv, err := Serve(testAuthority(t), "", WithListeners(3))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i, c := range srv.conns {
		if got := c.LocalAddr().String(); got != srv.Addr() {
			t.Errorf("listener %d bound %s, want %s", i, got, srv.Addr())
		}
	}
}

func TestBatchOneUsesSinglePacketPath(t *testing.T) {
	// Batch 1 must serve correctly through the portable single-packet
	// syscall path on every platform (on Linux this is the "unbatched"
	// side of the serve-throughput comparison).
	srv, err := Serve(testAuthority(t), "", WithBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Batch() != 1 {
		t.Fatalf("Batch() = %d, want 1", srv.Batch())
	}
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire, err := dnsmsg.NewQuery(9, "www.udp.test", dnsmsg.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleWire(wire); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedDatagramDroppedBeforeHandler(t *testing.T) {
	// A datagram shorter than a DNS header must never reach the handler:
	// the old code counted it malformed but handed it over anyway, earning
	// garbage a FORMERR response. Now it is dropped silently.
	seen := &recordingHandler{inner: testAuthority(t)}
	srv, err := Serve(seen, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewClient(srv.Addr(), WithTimeout(100*time.Millisecond), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.HandleWire([]byte{0, 9, 1, 2, 3}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("runt datagram should be dropped (timeout), got %v", err)
	}
	if n := seen.calls.Load(); n != 0 {
		t.Errorf("handler saw %d calls for a runt datagram, want 0", n)
	}
	// The server keeps serving real queries afterwards.
	wire, err := dnsmsg.NewQuery(3, "www.udp.test", dnsmsg.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleWire(wire); err != nil {
		t.Fatalf("server died after runt: %v", err)
	}
}

// bigResponder answers every query with n TXT records, producing responses
// far beyond the classic 512-byte budget.
type bigResponder struct{ records int }

func (h bigResponder) HandleWire(query []byte) ([]byte, error) {
	msg, err := dnsmsg.Decode(query)
	if err != nil || len(msg.Questions) != 1 {
		return nil, err
	}
	resp := dnsmsg.NewResponse(msg, dnsmsg.RCodeNoError)
	resp.Header.ID = msg.Header.ID
	for i := 0; i < h.records; i++ {
		resp.Answers = append(resp.Answers, dnsmsg.RR{
			Name: msg.Questions[0].Name, Type: dnsmsg.TypeTXT, Class: dnsmsg.ClassIN,
			TTL: 60, RData: fmt.Sprintf("record-%03d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		})
	}
	return resp.Encode()
}

// appendOPT adds an EDNS0 OPT pseudo-RR advertising the given UDP payload
// size to an encoded query.
func appendOPT(wire []byte, size uint16) []byte {
	wire[11]++ // ARCOUNT
	return append(wire,
		0x00,       // root name
		0x00, 0x29, // TYPE OPT
		byte(size>>8), byte(size), // CLASS = payload size
		0, 0, 0, 0, // TTL (extended rcode/flags)
		0x00, 0x00, // RDLEN
	)
}

func TestOversizeResponseTruncated(t *testing.T) {
	srv, err := Serve(bigResponder{records: 40}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	wire, err := dnsmsg.NewQuery(0x77, "big.udp.test", dnsmsg.TypeTXT).Encode()
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := client.HandleWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(respWire) > 512 {
		t.Fatalf("non-EDNS response is %d bytes, want <= 512", len(respWire))
	}
	resp, err := dnsmsg.Decode(respWire)
	if err != nil {
		t.Fatalf("truncated response must stay decodable: %v", err)
	}
	if !resp.Header.Truncated {
		t.Error("TC bit not set on truncated response")
	}
	if len(resp.Answers) != 0 || len(resp.Authority) != 0 || len(resp.Additional) != 0 {
		t.Errorf("truncated response carries records: %d/%d/%d",
			len(resp.Answers), len(resp.Authority), len(resp.Additional))
	}
	if len(resp.Questions) != 1 || resp.Questions[0].Name != "big.udp.test" {
		t.Errorf("question not preserved: %+v", resp.Questions)
	}
}

func TestEDNSBudgetRaisesTruncationPoint(t *testing.T) {
	srv, err := Serve(bigResponder{records: 40}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The full response is ~2KB; an EDNS bufsize of 4096 must let it
	// through whole, like `dig +bufsize=4096`.
	wire, err := dnsmsg.NewQuery(0x78, "big.udp.test", dnsmsg.TypeTXT).Encode()
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := client.HandleWire(appendOPT(wire, 4096))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Error("TC set despite sufficient EDNS budget")
	}
	if len(resp.Answers) != 40 {
		t.Errorf("answers = %d, want 40", len(resp.Answers))
	}

	// A bufsize below the response size still truncates at that budget.
	wire2, err := dnsmsg.NewQuery(0x79, "big.udp.test", dnsmsg.TypeTXT).Encode()
	if err != nil {
		t.Fatal(err)
	}
	respWire2, err := client.HandleWire(appendOPT(wire2, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(respWire2) > 1024 {
		t.Fatalf("EDNS-1024 response is %d bytes, want <= 1024", len(respWire2))
	}
	resp2, err := dnsmsg.Decode(respWire2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Header.Truncated {
		t.Error("TC not set when response exceeds the EDNS budget")
	}
}

func TestPortPerAttemptUsesDistinctSourcePorts(t *testing.T) {
	// A black-hole server that records each datagram's source port and
	// never answers, so every client attempt times out and retries.
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	ports := make(chan int, 8)
	go func() {
		buf := make([]byte, 64)
		for {
			_, raddr, err := hole.ReadFromUDP(buf)
			if err != nil {
				return
			}
			ports <- raddr.Port
		}
	}()

	collect := func(opts ...ClientOption) []int {
		t.Helper()
		opts = append([]ClientOption{WithTimeout(50 * time.Millisecond), WithRetries(2)}, opts...)
		client, err := NewClient(hole.LocalAddr().String(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		wire, err := dnsmsg.NewQuery(5, "www.udp.test", dnsmsg.TypeA).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.HandleWire(wire); !errors.Is(err, ErrTimeout) {
			t.Fatalf("expected timeout, got %v", err)
		}
		var got []int
		for i := 0; i < 3; i++ {
			select {
			case p := <-ports:
				got = append(got, p)
			case <-time.After(time.Second):
				t.Fatalf("saw only %d attempts", len(got))
			}
		}
		return got
	}

	same := collect()
	for _, p := range same[1:] {
		if p != same[0] {
			t.Fatalf("default client changed source port across attempts: %v", same)
		}
	}
	fresh := collect(WithPortPerAttempt())
	seen := map[int]bool{}
	for _, p := range fresh {
		if seen[p] {
			t.Fatalf("WithPortPerAttempt reused source port: %v", fresh)
		}
		seen[p] = true
	}
}
