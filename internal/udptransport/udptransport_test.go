package udptransport

import (
	"errors"
	"testing"
	"time"

	"dnsnoise/internal/authority"
	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/resolver"
)

func testAuthority(t *testing.T) *authority.Server {
	t.Helper()
	srv := authority.NewServer()
	z, err := authority.NewZone("udp.test")
	if err != nil {
		t.Fatal(err)
	}
	rr := dnsmsg.RR{Name: "www.udp.test", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300, RData: "198.18.0.7"}
	if err := z.Add(rr); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddZone(z); err != nil {
		t.Fatal(err)
	}
	return srv
}

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := Serve(testAuthority(t), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestQueryOverUDP(t *testing.T) {
	_, client := startServer(t)
	q := dnsmsg.NewQuery(0x4242, "www.udp.test", dnsmsg.TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := client.HandleWire(wire)
	if err != nil {
		t.Fatalf("HandleWire: %v", err)
	}
	resp, err := dnsmsg.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 0x4242 {
		t.Errorf("ID = %#x", resp.Header.ID)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].RData != "198.18.0.7" {
		t.Errorf("answers = %+v", resp.Answers)
	}
}

func TestNXDomainOverUDP(t *testing.T) {
	_, client := startServer(t)
	q := dnsmsg.NewQuery(7, "missing.udp.test", dnsmsg.TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := client.HandleWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Errorf("RCode = %v", resp.Header.RCode)
	}
}

func TestResolverClusterOverUDP(t *testing.T) {
	// The full stack: resolver cluster recursing over real UDP packets.
	_, client := startServer(t)
	cluster, err := resolver.NewCluster(client, resolver.WithServers(1))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)
	r, err := cluster.Resolve(resolver.Query{Time: t0, ClientID: 1, Name: "www.udp.test", Type: dnsmsg.TypeA})
	if err != nil {
		t.Fatalf("Resolve over UDP: %v", err)
	}
	if r.FromCache || len(r.Answers) != 1 {
		t.Fatalf("response = %+v", r)
	}
	r, err = cluster.Resolve(resolver.Query{Time: t0.Add(time.Second), ClientID: 1, Name: "www.udp.test", Type: dnsmsg.TypeA})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache {
		t.Error("second resolve should hit the cache, not the network")
	}
}

func TestClientTimeout(t *testing.T) {
	// A client pointed at a UDP port where nothing listens times out.
	client, err := NewClient("127.0.0.1:1", WithTimeout(50*time.Millisecond), WithRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	q := dnsmsg.NewQuery(1, "www.udp.test", dnsmsg.TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.HandleWire(wire)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	// ICMP port-unreachable may surface as a socket error instead of a
	// deadline; both are failures, only the deadline path must also work.
	if errors.Is(err, ErrTimeout) && time.Since(start) < 90*time.Millisecond {
		t.Errorf("timed out too fast for 2 x 50ms attempts: %v", time.Since(start))
	}
}

func TestServerSurvivesGarbage(t *testing.T) {
	_, client := startServer(t)
	// Garbage produces a FORMERR (header readable) or is dropped; either
	// way the server must keep answering real queries afterwards.
	if _, err := client.HandleWire([]byte{0, 9, 1, 2, 3}); err != nil && !errors.Is(err, ErrTimeout) {
		t.Fatalf("garbage query: %v", err)
	}
	q := dnsmsg.NewQuery(3, "www.udp.test", dnsmsg.TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleWire(wire); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve(testAuthority(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(nil, ""); err == nil {
		t.Error("Serve(nil) should fail")
	}
	if _, err := Serve(testAuthority(t), "not-an-addr:xx"); err == nil {
		t.Error("Serve(bad addr) should fail")
	}
	if _, err := NewClient("bad::addr::foo"); err == nil {
		t.Error("NewClient(bad addr) should fail")
	}
}

func TestClientRejectsShortQuery(t *testing.T) {
	_, client := startServer(t)
	if _, err := client.HandleWire([]byte{1}); err == nil {
		t.Error("short query should fail before hitting the network")
	}
}
