package udptransport

import (
	"bytes"
	"testing"
	"time"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/qlog"
	"dnsnoise/internal/telemetry"
)

// suffixScorer flags any query whose wire bytes contain the marker label,
// standing in for the real snapshot probe without dragging the miner into
// transport tests (livescore's own tests own that integration). Like the
// real scorer it must not allocate: the alloc guard below runs over it.
type suffixScorer struct{ marker []byte }

func (s suffixScorer) ScoreWire(query []byte) qlog.Verdict {
	if len(query) <= dnsHeaderLen {
		return qlog.VerdictNone
	}
	if bytes.Contains(query[dnsHeaderLen:], s.marker) {
		return qlog.VerdictDisposable
	}
	return qlog.VerdictBenign
}

// TestWithScorerTagsEventsAndCounters drives one benign and one disposable
// query through a scoring server and checks the verdict shows up in every
// surface: the per-verdict packet counters, the per-verdict latency
// histograms, and the sampled qlog events (filterable by verdict).
func TestWithScorerTagsEventsAndCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := qlog.New(qlog.Config{Sample: 1, RingSize: 8})
	mem := qlog.NewMemorySink(64)
	l.AddSink(mem)
	var made int
	srv, err := Serve(testAuthority(t), "",
		WithServerMetrics(reg), WithServerQueryLog(l),
		WithScorer(func(listener int) Scorer {
			made++
			return suffixScorer{marker: []byte("evil")}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if made != srv.Listeners() {
		t.Fatalf("scorer factory ran %d times for %d listeners", made, srv.Listeners())
	}
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i, name := range []string{"www.udp.test", "evil.udp.test"} {
		wire, err := dnsmsg.NewQuery(uint16(i+1), name, dnsmsg.TypeA).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.HandleWire(wire); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter(`udp_scored_total{verdict="benign"}`); got != 1 {
		t.Errorf(`udp_scored_total{verdict="benign"} = %d, want 1`, got)
	}
	if got := snap.Counter(`udp_scored_total{verdict="disposable"}`); got != 1 {
		t.Errorf(`udp_scored_total{verdict="disposable"} = %d, want 1`, got)
	}
	for _, verdict := range []string{"benign", "disposable"} {
		h := snap.Histograms[`udp_handle_latency_ns{verdict="`+verdict+`"}`]
		if h.Count != 1 {
			t.Errorf("%s latency histogram saw %d samples, want 1", verdict, h.Count)
		}
	}
	evs := mem.Snapshot(qlog.Filter{Verdict: "disposable"})
	if len(evs) != 1 || evs[0].Name != "evil.udp.test" {
		t.Fatalf("verdict-filtered events = %+v, want one evil.udp.test", evs)
	}
	if evs := mem.Snapshot(qlog.Filter{Verdict: "benign"}); len(evs) != 1 || evs[0].Name != "www.udp.test" {
		t.Fatalf("benign-filtered events = %+v, want one www.udp.test", evs)
	}
}

// TestServePacketPathZeroAllocWithScorer extends the packet-path alloc
// guard to the scoring branch: classifying every datagram must not move
// the serve loop off zero allocations.
func TestServePacketPathZeroAllocWithScorer(t *testing.T) {
	wire, err := dnsmsg.NewQuery(0x5151, "host.zone.example", dnsmsg.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	w := newProcessHarness(t, echoWireHandler{}, wire)
	w.scorer = suffixScorer{marker: []byte("zone")}
	b := &w.slots[0]
	w.process(b)
	if w.stats.scoredDisposable.Load() != 1 {
		t.Fatal("scorer did not run on the packet path")
	}
	if allocs := testing.AllocsPerRun(1000, func() { w.process(b) }); allocs != 0 {
		t.Errorf("scoring packet path allocates %.1f allocs/op, want 0", allocs)
	}
}
