//go:build linux

package udptransport

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// reuseportAvailable gates the multi-listener path: Linux kernels steer
// flows across SO_REUSEPORT sockets with a per-4-tuple hash, giving each
// listener goroutine its own receive queue with no userspace fan-out.
const reuseportAvailable = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package on
// Linux (the option shipped in Linux 3.9, after the package's constant
// tables were generated). The value is 15 on every Linux arch.
const soReusePort = 0xf

// listenReusePort binds a UDP socket on addr with SO_REUSEPORT set before
// bind, so several listeners can share one port.
func listenReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conn, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("udptransport: unexpected conn type %T", pc)
	}
	return conn, nil
}
