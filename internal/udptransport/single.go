package udptransport

import (
	"errors"
	"net"
	"net/netip"
)

// singleIO is the portable packetIO: one datagram per syscall through the
// AddrPort read/write methods, which pass the peer address by value and so
// keep the path allocation-free. It is both the non-Linux fallback and the
// batch=1 configuration everywhere (the "single vs batched syscalls" axis
// of the serve-throughput benchmark).
type singleIO struct {
	conn  *net.UDPConn
	slots []pktBuf
	rx    []byte
	addr  netip.AddrPort // peer of the datagram in slot 0
}

func newSingleIO(conn *net.UDPConn, slots []pktBuf, rx []byte) *singleIO {
	return &singleIO{conn: conn, slots: slots, rx: rx}
}

func (s *singleIO) recv() (int, error) {
	n, addr, err := s.conn.ReadFromUDPAddrPort(s.rx[:maxPacket])
	if err != nil {
		return 0, err
	}
	s.addr = addr
	s.slots[0].in = s.rx[:n]
	return 1, nil
}

func (s *singleIO) send(n int) (pkts, bytes uint64, err error) {
	for i := 0; i < n; i++ {
		b := &s.slots[i]
		if !b.send {
			continue
		}
		// Best effort; a lost response packet is the client's problem.
		if _, werr := s.conn.WriteToUDPAddrPort(b.out, s.addr); werr != nil {
			if isClosedErr(werr) {
				return pkts, bytes, werr
			}
			continue
		}
		pkts++
		bytes += uint64(len(b.out))
	}
	return pkts, bytes, nil
}

// isClosedErr reports whether err means the socket is gone and the worker
// should stop, as opposed to a transient per-packet send failure.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
