// Package udptransport carries DNS wire messages over real UDP sockets, so
// the simulated resolver and authority can be separated across processes or
// machines. The Server is a multi-core front door: N listener sockets
// (SO_REUSEPORT on Linux, single-socket elsewhere), each owned by a worker
// goroutine that moves datagrams in batches (recvmmsg/sendmmsg on Linux,
// one-packet syscalls elsewhere) through preallocated buffers — the
// steady-state packet path performs zero heap allocations. The Client
// implements the resolver's Upstream interface over the network.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/qlog"
	"dnsnoise/internal/telemetry"
)

// Errors returned by the transport.
var (
	ErrClosed  = errors.New("udptransport: server closed")
	ErrTimeout = errors.New("udptransport: query timed out")
)

// maxPacket is the largest UDP payload accepted or sent; generous for the
// simulator's non-EDNS messages and the usual EDNS budgets (dig defaults
// to 1232).
const maxPacket = 4096

// minUDPPayload is the classic RFC 1035 response budget for clients that
// advertise no EDNS0 buffer size.
const minUDPPayload = 512

// dnsHeaderLen is the fixed DNS message header size; shorter datagrams
// cannot possibly be valid queries and are dropped before the handler.
const dnsHeaderLen = 12

// DefaultBatch is the per-listener datagram batch size when WithBatch is
// not given: large enough to amortize syscall cost under load, small
// enough that the per-listener buffer block (batch x maxPacket) stays in
// cache-friendly territory.
const DefaultBatch = 32

// Handler answers a wire-format DNS query. Implementations must not retain
// query past the call: the serve path reuses its receive buffers.
type Handler interface {
	HandleWire(query []byte) ([]byte, error)
}

// WireHandler is the allocation-conscious serve contract: the response is
// appended to dst, a transport-owned scratch buffer reused across packets,
// so steady-state handling allocates nothing in the transport. query must
// not be retained past the call. Handlers that also implement WireHandler
// (like authority.Server) are served through this path; plain Handlers are
// adapted with one copy per response.
type WireHandler interface {
	AppendHandleWire(dst, query []byte) ([]byte, error)
}

// handlerAdapter bridges a plain Handler onto the WireHandler contract with
// one copy per response.
type handlerAdapter struct{ h Handler }

func (a handlerAdapter) AppendHandleWire(dst, query []byte) ([]byte, error) {
	resp, err := a.h.HandleWire(query)
	if err != nil {
		return dst, err
	}
	return append(dst, resp...), nil
}

// asWireHandler selects the zero-copy contract when the handler offers it.
func asWireHandler(h Handler) WireHandler {
	if wh, ok := h.(WireHandler); ok {
		return wh
	}
	return handlerAdapter{h: h}
}

// Scorer classifies one wire-format query as it passes through the serve
// path, returning its live disposable verdict. Implementations must be
// safe for the transport's calling pattern — one scorer per listener
// worker, never shared — and must not retain query past the call. The
// canonical implementation is livescore.Scorer, which probes the
// streaming miner's verdict snapshot with zero allocations.
type Scorer interface {
	ScoreWire(query []byte) qlog.Verdict
}

// Server answers DNS queries from one or more UDP sockets.
type Server struct {
	wire       WireHandler
	conns      []*net.UDPConn
	workers    []*listenerWorker
	reg        *telemetry.Registry
	log        *qlog.Log
	newScorer  func(listener int) Scorer
	listeners  int
	batch      int
	tcpEnabled bool
	tcp        *tcpState

	// Handler latency, observed on sampled (logged) packets only — the
	// unsampled fast path never reads the clock. Nil-safe. latAll covers
	// every sampled packet (the tsdb's p99 series and its alert rule);
	// the per-verdict pair exists only with a scorer attached.
	latAll        *telemetry.Histogram
	latBenign     *telemetry.Histogram
	latDisposable *telemetry.Histogram

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// listenerStats is one listener's packet counters. Each worker writes only
// its own shard; scrapes sum the shards through CounterFunc at read time,
// the same sharding discipline as the resolver's per-server stats. The
// fields are atomic so concurrent scrapes are race-free; uncontended
// atomic adds cost the same as plain stores on the serve path.
type listenerStats struct {
	rxPackets atomic.Uint64
	rxBytes   atomic.Uint64
	txPackets atomic.Uint64
	txBytes   atomic.Uint64
	malformed atomic.Uint64
	dropped   atomic.Uint64
	truncated atomic.Uint64

	// Live-scoring verdict counts; only move when a scorer is attached.
	scoredBenign     atomic.Uint64
	scoredDisposable atomic.Uint64

	_ [7]uint64 // round to a 128-byte line pair against false sharing
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerMetrics registers the server's packet counters with reg:
// datagrams and bytes in/out, malformed queries (shorter than a DNS
// header), dropped queries (handler failures, malformed included),
// responses truncated to the client's payload budget, and the active
// listener count. Counters are kept in per-listener shards and summed at
// scrape time.
func WithServerMetrics(reg *telemetry.Registry) ServerOption {
	return func(s *Server) { s.reg = reg }
}

// WithServerQueryLog attaches a query-level event log: each listener
// worker head-samples handled queries through its own recorder and records
// name, qtype, rcode-derived outcome and handler latency. A nil log
// disables everything. Flush the log only after Close has joined the
// workers.
func WithServerQueryLog(l *qlog.Log) ServerOption {
	return func(s *Server) { s.log = l }
}

// WithScorer attaches live query scoring: factory is called once per
// listener at Serve time and the returned scorer classifies every
// datagram that clears the malformed gate, before the handler runs. The
// verdict tags the query's sampled qlog event, moves the per-verdict
// packet counters (udp_scored_total), and routes the sampled handler
// latency into a per-verdict histogram. Scorers are per-listener, so
// implementations need no internal locking against the packet path.
func WithScorer(factory func(listener int) Scorer) ServerOption {
	return func(s *Server) { s.newScorer = factory }
}

// WithListeners sets how many listener sockets to open (default 1). More
// than one requires SO_REUSEPORT kernel steering; on platforms without it
// the server silently falls back to a single socket (see Listeners).
func WithListeners(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.listeners = n
		}
	}
}

// WithBatch sets the per-listener datagram batch size (default
// DefaultBatch). On Linux a batch moves through one recvmmsg/sendmmsg
// syscall pair; 1 forces single-packet syscalls everywhere.
func WithBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.batch = n
		}
	}
}

// Serve binds addr (e.g. "127.0.0.1:0" for an ephemeral port; "" defaults
// to that) and starts answering queries with handler until Close.
func Serve(handler Handler, addr string, opts ...ServerOption) (*Server, error) {
	if handler == nil {
		return nil, errors.New("udptransport: nil handler")
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if _, err := net.ResolveUDPAddr("udp", addr); err != nil {
		return nil, fmt.Errorf("udptransport: resolve %q: %w", addr, err)
	}
	s := &Server{listeners: 1, batch: DefaultBatch}
	for _, o := range opts {
		o(s)
	}
	s.wire = asWireHandler(handler)
	conns, err := listenAll(addr, s.listeners)
	if err != nil {
		return nil, err
	}
	s.conns = conns
	for i, conn := range conns {
		s.workers = append(s.workers, newListenerWorker(s, conn, i))
	}
	if s.tcpEnabled {
		if err := s.serveTCP(); err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
	}
	s.registerMetrics()
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	return s, nil
}

// listenAll opens n sockets on addr. The first bind resolves an ephemeral
// port; the rest bind the concrete address with SO_REUSEPORT so the kernel
// steers flows across them. Platforms without reuseport get one socket.
func listenAll(addr string, n int) ([]*net.UDPConn, error) {
	if n <= 1 || !reuseportAvailable {
		laddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("udptransport: resolve %q: %w", addr, err)
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, fmt.Errorf("udptransport: listen: %w", err)
		}
		return []*net.UDPConn{conn}, nil
	}
	conns := make([]*net.UDPConn, 0, n)
	first, err := listenReusePort(addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen: %w", err)
	}
	conns = append(conns, first)
	bound := first.LocalAddr().String()
	for i := 1; i < n; i++ {
		c, err := listenReusePort(bound)
		if err != nil {
			for _, open := range conns {
				open.Close()
			}
			return nil, fmt.Errorf("udptransport: listener %d: %w", i, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// registerMetrics wires the scrape-time shard sums. Called after every
// worker exists and before any starts, so the workers slice is immutable
// when the collection functions run.
func (s *Server) registerMetrics() {
	if s.reg == nil {
		return
	}
	workers := s.workers
	sum := func(read func(*listenerStats) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, w := range workers {
				total += read(&w.stats)
			}
			return total
		}
	}
	s.reg.CounterFunc("udp_rx_packets_total", "Datagrams received.",
		sum(func(st *listenerStats) uint64 { return st.rxPackets.Load() }))
	s.reg.CounterFunc("udp_rx_bytes_total", "Bytes received.",
		sum(func(st *listenerStats) uint64 { return st.rxBytes.Load() }))
	s.reg.CounterFunc("udp_tx_packets_total", "Response datagrams sent.",
		sum(func(st *listenerStats) uint64 { return st.txPackets.Load() }))
	s.reg.CounterFunc("udp_tx_bytes_total", "Bytes sent.",
		sum(func(st *listenerStats) uint64 { return st.txBytes.Load() }))
	s.reg.CounterFunc("udp_malformed_total", "Queries shorter than a DNS header.",
		sum(func(st *listenerStats) uint64 { return st.malformed.Load() }))
	s.reg.CounterFunc("udp_dropped_total", "Queries dropped unanswered.",
		sum(func(st *listenerStats) uint64 { return st.dropped.Load() }))
	s.reg.CounterFunc("udp_truncated_total", "Responses truncated to the client's payload budget.",
		sum(func(st *listenerStats) uint64 { return st.truncated.Load() }))
	s.reg.Gauge("udp_listeners", "Active listener sockets.").Set(float64(len(s.conns)))
	s.latAll = s.reg.Histogram("udp_handle_latency_ns",
		"Handler latency of sampled queries, all verdicts.")
	if s.tcp != nil {
		s.reg.CounterFunc("tcp_connections_total", "TCP fallback connections accepted.",
			s.tcp.accepts.Load)
		s.reg.CounterFunc("tcp_queries_total", "Queries answered over the TCP fallback listener.",
			s.tcp.queries.Load)
	}
	if s.newScorer != nil {
		s.reg.CounterFunc(`udp_scored_total{verdict="benign"}`,
			"Queries live-scored benign.",
			sum(func(st *listenerStats) uint64 { return st.scoredBenign.Load() }))
		s.reg.CounterFunc(`udp_scored_total{verdict="disposable"}`,
			"Queries live-scored disposable.",
			sum(func(st *listenerStats) uint64 { return st.scoredDisposable.Load() }))
		s.latBenign = s.reg.Histogram(`udp_handle_latency_ns{verdict="benign"}`,
			"Handler latency of sampled queries scored benign.")
		s.latDisposable = s.reg.Histogram(`udp_handle_latency_ns{verdict="disposable"}`,
			"Handler latency of sampled queries scored disposable.")
	}
}

// Addr returns the bound address, suitable for NewClient. With several
// listeners they all share it (SO_REUSEPORT).
func (s *Server) Addr() string { return s.conns[0].LocalAddr().String() }

// Listeners reports how many listener sockets are actually serving — the
// requested count, or 1 where SO_REUSEPORT is unavailable.
func (s *Server) Listeners() int { return len(s.conns) }

// Batch reports the per-listener datagram batch size in effect.
func (s *Server) Batch() int { return s.batch }

// Close stops the server and waits for every listener worker to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.closeTCP()
	for _, c := range s.conns {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.wg.Wait()
	return err
}

// pktBuf is one packet slot in a listener's ring: the received datagram
// (a window into the worker's preallocated receive block) and the reusable
// response buffer the handler appends into.
type pktBuf struct {
	in   []byte // received datagram; valid until the next recv
	out  []byte // response wire; capacity reused across packets
	send bool   // out holds a response to transmit
}

// listenerWorker owns one socket: a goroutine looping recv -> process each
// packet -> send. All per-packet state is preallocated at construction, so
// the steady-state loop is allocation-free (guarded by AllocsPerRun tests).
type listenerWorker struct {
	srv    *Server
	conn   *net.UDPConn
	id     int
	slots  []pktBuf
	io     packetIO
	stats  listenerStats
	qrec   *qlog.Recorder
	scorer Scorer // per-listener, nil when scoring is off
}

// packetIO moves batches of datagrams between a socket and the worker's
// slots. recv blocks until at least one datagram arrives (or the socket
// closes) and returns how many slots it filled, setting each slot's in;
// send transmits every slot in [0, n) with send set, returning the packets
// and bytes actually put on the wire. Implementations preallocate all
// per-slot state: neither call allocates.
type packetIO interface {
	recv() (int, error)
	send(n int) (pkts, bytes uint64, err error)
}

func newListenerWorker(s *Server, conn *net.UDPConn, id int) *listenerWorker {
	batch := s.batch
	if batch < 1 {
		batch = 1
	}
	w := &listenerWorker{
		srv:   s,
		conn:  conn,
		id:    id,
		slots: make([]pktBuf, batch),
	}
	rx := make([]byte, batch*maxPacket)
	w.io = newPacketIO(conn, w.slots, rx)
	w.qrec = s.log.NewRecorder(id) // nil-safe: nil log -> nil recorder
	if s.newScorer != nil {
		w.scorer = s.newScorer(id)
	}
	return w
}

func (w *listenerWorker) loop() {
	defer w.srv.wg.Done()
	for {
		n, err := w.io.recv()
		if err != nil {
			return // closed (or fatal socket error): stop serving
		}
		for i := 0; i < n; i++ {
			w.process(&w.slots[i])
		}
		pkts, bytes, err := w.io.send(n)
		w.stats.txPackets.Add(pkts)
		w.stats.txBytes.Add(bytes)
		if err != nil {
			return
		}
	}
}

// process handles one received datagram in b: counts it, drops malformed
// runts before the handler, appends the handler's response into the slot's
// reusable buffer, and applies the client's payload budget (EDNS0-aware
// truncation). This is the zero-allocation packet path — everything it
// touches is preallocated slot state.
func (w *listenerWorker) process(b *pktBuf) {
	b.send = false
	w.stats.rxPackets.Add(1)
	w.stats.rxBytes.Add(uint64(len(b.in)))
	if len(b.in) < dnsHeaderLen {
		// Shorter than a DNS header: not conceivably a query. Drop it
		// before the handler ever sees it.
		w.stats.malformed.Add(1)
		w.stats.dropped.Add(1)
		return
	}
	verdict := qlog.VerdictNone
	if w.scorer != nil {
		switch verdict = w.scorer.ScoreWire(b.in); verdict {
		case qlog.VerdictBenign:
			w.stats.scoredBenign.Add(1)
		case qlog.VerdictDisposable:
			w.stats.scoredDisposable.Add(1)
		}
	}
	logged := w.qrec.Sample()
	var handleStart time.Time
	if logged {
		handleStart = time.Now()
	}
	out, err := w.srv.wire.AppendHandleWire(b.out[:0], b.in)
	if logged {
		w.logQuery(b.in, out, err, verdict, time.Since(handleStart))
	}
	if err != nil || len(out) == 0 {
		// Unanswerable garbage: drop it, like a real server under junk
		// traffic. The client's timeout handles the rest.
		w.stats.dropped.Add(1)
		return
	}
	if budget := payloadBudget(b.in); len(out) > budget {
		out = truncateResponse(out)
		w.stats.truncated.Add(1)
	}
	b.out = out // keep any capacity growth for the next packet
	b.send = true
}

// payloadBudget is the largest response payload the querying client can
// accept: the classic 512 bytes, raised by an EDNS0 OPT record up to the
// transport's own packet cap. This is what makes `dig +bufsize=N` work.
func payloadBudget(query []byte) int {
	budget := minUDPPayload
	if sz, ok := dnsmsg.EDNSUDPSize(query); ok && int(sz) > budget {
		budget = int(sz)
		if budget > maxPacket {
			budget = maxPacket
		}
	}
	return budget
}

// truncateResponse shrinks resp to header+question with the TC bit set and
// the record counts zeroed — the RFC 1035 §4.1.1 signal for "retry over
// TCP". A header+question prefix is at most 12+255+4 bytes, which fits any
// budget the transport can produce, so the result always fits. Operates in
// place on the wire; never allocates.
func truncateResponse(resp []byte) []byte {
	end := dnsmsg.QuestionSectionEnd(resp)
	if end < 0 || end > len(resp) {
		end = dnsHeaderLen
		resp[4], resp[5] = 0, 0 // QDCOUNT: question dropped too
	}
	resp[2] |= 0x02 // TC
	for i := 6; i < dnsHeaderLen; i++ {
		resp[i] = 0 // ANCOUNT, NSCOUNT, ARCOUNT
	}
	return resp[:end]
}

// logQuery emits one event for a head-sampled query: the question decoded
// from the query wire, the outcome derived from the response rcode, the
// live-scoring verdict (when a scorer is attached), and the handler's
// wall time. Decoding and the per-verdict latency observation happen only
// on sampled queries, off the unsampled fast path.
func (w *listenerWorker) logQuery(query, resp []byte, herr error, verdict qlog.Verdict, elapsed time.Duration) {
	w.srv.latAll.Observe(uint64(elapsed))
	switch verdict {
	case qlog.VerdictBenign:
		w.srv.latBenign.Observe(uint64(elapsed))
	case qlog.VerdictDisposable:
		w.srv.latDisposable.Observe(uint64(elapsed))
	}
	ev := qlog.Event{Time: time.Now(), LatencyNs: uint64(elapsed), Verdict: verdict}
	if msg, err := dnsmsg.Decode(query); err == nil && len(msg.Questions) > 0 {
		ev.Name = msg.Questions[0].Name
		ev.Qtype = msg.Questions[0].Type.String()
	}
	switch {
	case herr != nil || len(resp) < dnsHeaderLen:
		ev.Outcome = qlog.OutcomeError
	default:
		switch dnsmsg.RCode(resp[3] & 0x0F) {
		case dnsmsg.RCodeNoError:
			ev.Outcome = qlog.OutcomeNoError
		case dnsmsg.RCodeNXDomain:
			ev.Outcome = qlog.OutcomeNXDomain
		case dnsmsg.RCodeServFail:
			ev.Outcome = qlog.OutcomeServFail
		default:
			ev.Outcome = qlog.OutcomeError
		}
	}
	w.qrec.Emit(ev)
	// Drain eagerly: the worker handles a small batch at a time and its
	// /debug/qlog view should reflect a query as soon as it is answered,
	// not after a 256-event staging ring fills. The ring batching exists
	// for the simulation hot path; at packet-I/O rates one uncontended
	// mutex per sampled query is noise.
	w.qrec.Drain()
}

// Client sends DNS queries to a UDP server and implements the resolver's
// Upstream contract (HandleWire). It is safe for sequential use; a mutex
// serializes callers.
type Client struct {
	raddr          *net.UDPAddr
	timeout        time.Duration
	retries        int
	portPerAttempt bool
	tcpFallback    bool

	mu   sync.Mutex
	conn *net.UDPConn
	buf  []byte // receive buffer, guarded by mu like conn
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout sets the per-attempt response deadline (default 2s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithRetries sets how many times a timed-out query is retried (default 1).
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithPortPerAttempt gives every retry attempt a fresh socket, and with it
// a fresh ephemeral source port: a response to an earlier attempt that
// straggles in late dies with the socket that sent the query instead of
// collecting on the shared one. The per-query ID check still applies;
// this closes the window where a stale same-ID datagram could be read.
// Default off: one connected socket is reused across attempts.
func WithPortPerAttempt() ClientOption {
	return func(c *Client) { c.portPerAttempt = true }
}

// NewClient prepares a client for the server at addr.
func NewClient(addr string, opts ...ClientOption) (*Client, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: resolve %q: %w", addr, err)
	}
	c := &Client{raddr: raddr, timeout: 2 * time.Second, retries: 1, buf: make([]byte, maxPacket)}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// dialLocked ensures c.conn exists. Callers hold c.mu.
func (c *Client) dialLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialUDP("udp", nil, c.raddr)
	if err != nil {
		return fmt.Errorf("udptransport: dial: %w", err)
	}
	c.conn = conn
	return nil
}

// HandleWire sends the query and returns the matching response, satisfying
// resolver.Upstream. Responses whose ID does not match the query are
// discarded (late packets from earlier attempts).
func (c *Client) HandleWire(query []byte) ([]byte, error) {
	if len(query) < 2 {
		return nil, dnsmsg.ErrTruncatedMessage
	}
	queryID := uint16(query[0])<<8 | uint16(query[1])

	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 && c.portPerAttempt && c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		if err := c.dialLocked(); err != nil {
			return nil, err
		}
		if _, err := c.conn.Write(query); err != nil {
			return nil, fmt.Errorf("udptransport: send: %w", err)
		}
		deadline := time.Now().Add(c.timeout)
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return nil, fmt.Errorf("udptransport: deadline: %w", err)
		}
		for {
			n, err := c.conn.Read(c.buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // next attempt
				}
				return nil, fmt.Errorf("udptransport: recv: %w", err)
			}
			if n < 2 {
				continue
			}
			respID := uint16(c.buf[0])<<8 | uint16(c.buf[1])
			if respID != queryID {
				continue // stale response from an earlier attempt
			}
			resp := make([]byte, n)
			copy(resp, c.buf[:n])
			if c.tcpFallback && n >= dnsHeaderLen && resp[2]&0x02 != 0 {
				// Truncated: retry over TCP per RFC 1035. A failed TCP
				// retry surfaces the truncated UDP response instead —
				// header and question intact, like a stub resolver would.
				if full, err := c.exchangeTCP(query); err == nil {
					return full, nil
				}
			}
			return resp, nil
		}
	}
	return nil, fmt.Errorf("%w after %d attempts", ErrTimeout, c.retries+1)
}

// Close releases the client socket.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
