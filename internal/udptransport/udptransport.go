// Package udptransport carries DNS wire messages over real UDP sockets, so
// the simulated resolver and authority can be separated across processes or
// machines. The Server wraps anything that answers wire queries (the
// authority server); the Client implements the resolver's Upstream interface
// over the network.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/qlog"
	"dnsnoise/internal/telemetry"
)

// Errors returned by the transport.
var (
	ErrClosed  = errors.New("udptransport: server closed")
	ErrTimeout = errors.New("udptransport: query timed out")
)

// maxPacket is the largest UDP payload accepted; generous for the
// simulator's non-EDNS messages.
const maxPacket = 4096

// dnsHeaderLen is the fixed DNS message header size; shorter datagrams
// cannot possibly be valid queries.
const dnsHeaderLen = 12

// Handler answers a wire-format DNS query.
type Handler interface {
	HandleWire(query []byte) ([]byte, error)
}

// Server answers DNS queries from a UDP socket.
type Server struct {
	conn    *net.UDPConn
	handler Handler
	metrics serverMetrics
	qrec    *qlog.Recorder // nil unless WithServerQueryLog; owned by serveLoop

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// serverMetrics holds the server's packet counters. All fields are nil-safe
// no-ops until WithServerMetrics registers them.
type serverMetrics struct {
	rxPackets *telemetry.Counter
	rxBytes   *telemetry.Counter
	txPackets *telemetry.Counter
	txBytes   *telemetry.Counter
	malformed *telemetry.Counter
	dropped   *telemetry.Counter
	truncated *telemetry.Counter
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerMetrics registers the server's packet counters with reg:
// datagrams and bytes in/out, malformed queries (shorter than a DNS
// header), dropped queries (handler failures, malformed included), and
// responses exceeding the transport's packet budget.
func WithServerMetrics(reg *telemetry.Registry) ServerOption {
	return func(s *Server) {
		if reg == nil {
			return
		}
		s.metrics = serverMetrics{
			rxPackets: reg.Counter("udp_rx_packets_total", "Datagrams received."),
			rxBytes:   reg.Counter("udp_rx_bytes_total", "Bytes received."),
			txPackets: reg.Counter("udp_tx_packets_total", "Response datagrams sent."),
			txBytes:   reg.Counter("udp_tx_bytes_total", "Bytes sent."),
			malformed: reg.Counter("udp_malformed_total", "Queries shorter than a DNS header."),
			dropped:   reg.Counter("udp_dropped_total", "Queries dropped unanswered."),
			truncated: reg.Counter("udp_truncated_total", "Responses exceeding the packet budget."),
		}
	}
}

// WithServerQueryLog attaches a query-level event log: the serve loop
// head-samples handled queries and records name, qtype, rcode-derived
// outcome and handler latency. The single serve-loop goroutine owns the
// recorder, so the per-query cost is the sampling counter; a nil log
// disables everything. Flush the log only after Close has joined the
// loop.
func WithServerQueryLog(l *qlog.Log) ServerOption {
	return func(s *Server) { s.qrec = l.NewRecorder(0) }
}

// Serve binds addr (e.g. "127.0.0.1:0" for an ephemeral port; "" defaults
// to that) and starts answering queries with handler until Close.
func Serve(handler Handler, addr string, opts ...ServerOption) (*Server, error) {
	if handler == nil {
		return nil, errors.New("udptransport: nil handler")
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen: %w", err)
	}
	s := &Server{
		conn:    conn,
		handler: handler,
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	go s.serveLoop()
	return s, nil
}

// Addr returns the bound address, suitable for NewClient.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	<-s.done
	return err
}

func (s *Server) serveLoop() {
	defer close(s.done)
	m := &s.metrics
	buf := make([]byte, maxPacket)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed (or fatal socket error): stop serving
		}
		m.rxPackets.Inc()
		m.rxBytes.Add(uint64(n))
		if n < dnsHeaderLen {
			m.malformed.Inc()
		}
		query := make([]byte, n)
		copy(query, buf[:n])
		logged := s.qrec.Sample()
		var handleStart time.Time
		if logged {
			handleStart = time.Now()
		}
		resp, err := s.handler.HandleWire(query)
		if logged {
			s.logQuery(query, resp, err, time.Since(handleStart))
		}
		if err != nil || len(resp) == 0 {
			// Unanswerable garbage: drop it, like a real server under
			// junk traffic. The client's timeout handles the rest.
			m.dropped.Inc()
			continue
		}
		if len(resp) > maxPacket {
			m.truncated.Inc()
		}
		// Best effort; a lost response packet is the client's problem.
		if _, err := s.conn.WriteToUDP(resp, raddr); err == nil {
			m.txPackets.Inc()
			m.txBytes.Add(uint64(len(resp)))
		}
	}
}

// logQuery emits one event for a head-sampled query: the question
// decoded from the query wire, the outcome derived from the response
// rcode, and the handler's wall time. Decoding happens only on sampled
// queries, off the unsampled fast path.
func (s *Server) logQuery(query, resp []byte, herr error, elapsed time.Duration) {
	ev := qlog.Event{Time: time.Now(), LatencyNs: uint64(elapsed)}
	if msg, err := dnsmsg.Decode(query); err == nil && len(msg.Questions) > 0 {
		ev.Name = msg.Questions[0].Name
		ev.Qtype = msg.Questions[0].Type.String()
	}
	switch {
	case herr != nil || len(resp) < dnsHeaderLen:
		ev.Outcome = qlog.OutcomeError
	default:
		switch dnsmsg.RCode(resp[3] & 0x0F) {
		case dnsmsg.RCodeNoError:
			ev.Outcome = qlog.OutcomeNoError
		case dnsmsg.RCodeNXDomain:
			ev.Outcome = qlog.OutcomeNXDomain
		case dnsmsg.RCodeServFail:
			ev.Outcome = qlog.OutcomeServFail
		default:
			ev.Outcome = qlog.OutcomeError
		}
	}
	s.qrec.Emit(ev)
	// Drain eagerly: the server handles one datagram at a time and its
	// /debug/qlog view should reflect a query as soon as it is answered,
	// not after a 256-event staging ring fills. The ring batching exists
	// for the simulation hot path; at packet-I/O rates one uncontended
	// mutex per sampled query is noise.
	s.qrec.Drain()
}

// Client sends DNS queries to a UDP server and implements the resolver's
// Upstream contract (HandleWire). It is safe for sequential use; a mutex
// serializes callers.
type Client struct {
	raddr   *net.UDPAddr
	timeout time.Duration
	retries int

	mu   sync.Mutex
	conn *net.UDPConn
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout sets the per-attempt response deadline (default 2s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithRetries sets how many times a timed-out query is retried (default 1).
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// NewClient prepares a client for the server at addr.
func NewClient(addr string, opts ...ClientOption) (*Client, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: resolve %q: %w", addr, err)
	}
	c := &Client{raddr: raddr, timeout: 2 * time.Second, retries: 1}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// HandleWire sends the query and returns the matching response, satisfying
// resolver.Upstream. Responses whose ID does not match the query are
// discarded (late packets from earlier attempts).
func (c *Client) HandleWire(query []byte) ([]byte, error) {
	if len(query) < 2 {
		return nil, dnsmsg.ErrTruncatedMessage
	}
	queryID := uint16(query[0])<<8 | uint16(query[1])

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.DialUDP("udp", nil, c.raddr)
		if err != nil {
			return nil, fmt.Errorf("udptransport: dial: %w", err)
		}
		c.conn = conn
	}
	buf := make([]byte, maxPacket)
	for attempt := 0; attempt <= c.retries; attempt++ {
		if _, err := c.conn.Write(query); err != nil {
			return nil, fmt.Errorf("udptransport: send: %w", err)
		}
		deadline := time.Now().Add(c.timeout)
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return nil, fmt.Errorf("udptransport: deadline: %w", err)
		}
		for {
			n, err := c.conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // next attempt
				}
				return nil, fmt.Errorf("udptransport: recv: %w", err)
			}
			if n < 2 {
				continue
			}
			respID := uint16(buf[0])<<8 | uint16(buf[1])
			if respID != queryID {
				continue // stale response from an earlier attempt
			}
			resp := make([]byte, n)
			copy(resp, buf[:n])
			return resp, nil
		}
	}
	return nil, fmt.Errorf("%w after %d attempts", ErrTimeout, c.retries+1)
}

// Close releases the client socket.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
