package udptransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// tcpIdleTimeout is how long a server-side TCP connection may sit between
// messages before it is closed. Real resolvers send one retry and leave;
// anything slower is a stuck peer holding a goroutine.
const tcpIdleTimeout = 10 * time.Second

// tcpMaxMessage is the largest framed message accepted over TCP. The
// 2-byte length prefix caps the frame at 65535 anyway; this is just the
// explicit bound for buffer sizing.
const tcpMaxMessage = 1 << 16

// WithTCP opens a TCP listener alongside the UDP sockets, on the same
// address, speaking RFC 1035 §4.2.2 framing: every message is prefixed
// with a 2-byte big-endian length. This is where clients land after a
// truncated (TC=1) UDP response. Each accepted connection gets its own
// goroutine and an idle deadline; responses over TCP are never truncated.
func WithTCP() ServerOption {
	return func(s *Server) { s.tcpEnabled = true }
}

// tcpState is the Server's TCP half: the listener, the accept loop's
// lifecycle, and the set of open connections so Close can cut them loose.
type tcpState struct {
	ln      net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	accepts atomic.Uint64
	queries atomic.Uint64
}

// serveTCP binds the TCP listener on the UDP-bound address and starts the
// accept loop. Called from Serve after the UDP sockets exist, so the
// ephemeral port is already concrete.
func (s *Server) serveTCP() error {
	ln, err := net.Listen("tcp", s.Addr())
	if err != nil {
		return fmt.Errorf("udptransport: tcp listen: %w", err)
	}
	s.tcp = &tcpState{ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.tcp.mu.Lock()
		if s.tcp.closed {
			s.tcp.mu.Unlock()
			conn.Close()
			return
		}
		s.tcp.conns[conn] = struct{}{}
		s.tcp.mu.Unlock()
		s.tcp.accepts.Add(1)
		s.wg.Add(1)
		go s.serveTCPConn(conn)
	}
}

// serveTCPConn answers framed queries on one connection until the peer
// hangs up, a frame is malformed, or the idle deadline passes. The TCP
// path allocates per connection, not per message — it is the rare retry
// lane, not the packet loop.
func (s *Server) serveTCPConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.tcp.mu.Lock()
		delete(s.tcp.conns, conn)
		s.tcp.mu.Unlock()
		conn.Close()
	}()
	var hdr [2]byte
	in := make([]byte, 0, maxPacket)
	out := make([]byte, 0, maxPacket)
	for {
		if err := conn.SetDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint16(hdr[:]))
		if n < dnsHeaderLen {
			return // runt frame: hang up like a real server
		}
		if cap(in) < n {
			in = make([]byte, n)
		}
		in = in[:n]
		if _, err := io.ReadFull(conn, in); err != nil {
			return
		}
		s.tcp.queries.Add(1)
		resp, err := s.wire.AppendHandleWire(out[:0], in)
		if err != nil || len(resp) == 0 || len(resp) >= tcpMaxMessage {
			return // unanswerable: drop the connection
		}
		out = resp
		binary.BigEndian.PutUint16(hdr[:], uint16(len(resp)))
		if _, err := conn.Write(hdr[:]); err != nil {
			return
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

// closeTCP shuts the listener and every open connection, unblocking their
// goroutines so Close's wg.Wait returns.
func (s *Server) closeTCP() error {
	if s.tcp == nil {
		return nil
	}
	s.tcp.mu.Lock()
	s.tcp.closed = true
	conns := make([]net.Conn, 0, len(s.tcp.conns))
	for c := range s.tcp.conns {
		conns = append(conns, c)
	}
	s.tcp.mu.Unlock()
	err := s.tcp.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// TCPAddr returns the TCP listener's address, or "" when WithTCP was not
// given. It matches Addr when the OS grants the same port on both stacks
// (it always does here: the TCP bind copies the UDP-resolved address).
func (s *Server) TCPAddr() string {
	if s.tcp == nil {
		return ""
	}
	return s.tcp.ln.Addr().String()
}

// WithTCPFallback makes the client retry over TCP when a UDP response
// comes back truncated (TC=1), per RFC 1035 — the other half of the
// server's WithTCP. The TCP exchange reuses the per-attempt timeout. When
// the TCP retry itself fails, the truncated UDP response is returned
// rather than an error: the caller still gets the header and question,
// exactly what a stub resolver would surface.
func WithTCPFallback() ClientOption {
	return func(c *Client) { c.tcpFallback = true }
}

// exchangeTCP performs one framed query/response exchange over a fresh
// TCP connection.
func (c *Client) exchangeTCP(query []byte) ([]byte, error) {
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.Dial("tcp", c.raddr.String())
	if err != nil {
		return nil, fmt.Errorf("udptransport: tcp dial: %w", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, fmt.Errorf("udptransport: tcp deadline: %w", err)
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(query)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("udptransport: tcp send: %w", err)
	}
	if _, err := conn.Write(query); err != nil {
		return nil, fmt.Errorf("udptransport: tcp send: %w", err)
	}
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("udptransport: tcp recv: %w", err)
	}
	resp := make([]byte, int(binary.BigEndian.Uint16(hdr[:])))
	if _, err := io.ReadFull(conn, resp); err != nil {
		return nil, fmt.Errorf("udptransport: tcp recv: %w", err)
	}
	return resp, nil
}
