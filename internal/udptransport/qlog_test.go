package udptransport

import (
	"testing"
	"time"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/qlog"
)

// TestServerQueryLog runs real packets through a logging server and checks
// the sampled events carry the decoded question and rcode-derived outcome.
func TestServerQueryLog(t *testing.T) {
	l := qlog.New(qlog.Config{Sample: 1, RingSize: 8})
	mem := qlog.NewMemorySink(64)
	l.AddSink(mem)
	srv, err := Serve(testAuthority(t), "", WithServerQueryLog(l))
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	send := func(name string) {
		t.Helper()
		q := dnsmsg.NewQuery(9, name, dnsmsg.TypeA)
		wire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.HandleWire(wire); err != nil {
			t.Fatal(err)
		}
	}
	send("www.udp.test")
	send("missing.udp.test")

	// Close joins the serve loop, so the recorder is quiesced and the
	// global flush may drain its ring.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	evs := mem.Snapshot(qlog.Filter{})
	if len(evs) != 2 {
		t.Fatalf("sampled %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Name != "www.udp.test" || evs[0].Qtype != "A" || evs[0].Outcome != qlog.OutcomeNoError {
		t.Errorf("answered event = %+v, want www.udp.test/A noerror", evs[0])
	}
	if evs[1].Name != "missing.udp.test" || evs[1].Outcome != qlog.OutcomeNXDomain {
		t.Errorf("nxdomain event = %+v, want missing.udp.test nxdomain", evs[1])
	}
	for _, ev := range evs {
		if ev.LatencyNs == 0 {
			t.Errorf("event %d has no handler latency", ev.ID)
		}
	}
}

// TestServerQueryLogSampling checks the head sampler thins server-side
// events: with Sample 4, twelve queries yield exactly three.
func TestServerQueryLogSampling(t *testing.T) {
	l := qlog.New(qlog.Config{Sample: 4, RingSize: 8})
	mem := qlog.NewMemorySink(64)
	l.AddSink(mem)
	srv, err := Serve(testAuthority(t), "", WithServerQueryLog(l))
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 12; i++ {
		q := dnsmsg.NewQuery(uint16(i), "www.udp.test", dnsmsg.TypeA)
		wire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.HandleWire(wire); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Total(); got != 3 {
		t.Errorf("sampled %d of 12 queries at 1/4, want 3", got)
	}
}
