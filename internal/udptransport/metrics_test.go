package udptransport

import (
	"errors"
	"net"
	"testing"
	"time"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/telemetry"
)

// strictHandler refuses sub-header datagrams (the in-process authority
// would answer them FORMERR), so the test can exercise the drop counter.
type strictHandler struct{ inner Handler }

func (h strictHandler) HandleWire(q []byte) ([]byte, error) {
	if len(q) < dnsHeaderLen {
		return nil, errors.New("garbage query")
	}
	return h.inner.HandleWire(q)
}

// TestServerMetrics drives one good query and one garbage datagram through
// an instrumented server and checks every packet counter.
func TestServerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := Serve(strictHandler{testAuthority(t)}, "", WithServerMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := NewClient(srv.Addr(), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	q := dnsmsg.NewQuery(0x7777, "www.udp.test", dnsmsg.TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleWire(wire); err != nil {
		t.Fatal(err)
	}

	// A 4-byte datagram is too short to be a DNS query: counted malformed
	// and dropped, never answered.
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}

	// The garbage packet is processed asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var snap *telemetry.Snapshot
	for {
		snap = reg.Snapshot()
		if snap.Counter("udp_dropped_total") == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if got := snap.Counter("udp_rx_packets_total"); got != 2 {
		t.Errorf("udp_rx_packets_total = %d, want 2", got)
	}
	if got := snap.Counter("udp_rx_bytes_total"); got < uint64(len(wire))+4 {
		t.Errorf("udp_rx_bytes_total = %d, want >= %d", got, len(wire)+4)
	}
	if got := snap.Counter("udp_tx_packets_total"); got != 1 {
		t.Errorf("udp_tx_packets_total = %d, want 1", got)
	}
	if got := snap.Counter("udp_tx_bytes_total"); got == 0 {
		t.Error("udp_tx_bytes_total = 0, want > 0")
	}
	if got := snap.Counter("udp_malformed_total"); got != 1 {
		t.Errorf("udp_malformed_total = %d, want 1", got)
	}
	if got := snap.Counter("udp_dropped_total"); got != 1 {
		t.Errorf("udp_dropped_total = %d, want 1", got)
	}
	if got := snap.Counter("udp_truncated_total"); got != 0 {
		t.Errorf("udp_truncated_total = %d, want 0", got)
	}
}
