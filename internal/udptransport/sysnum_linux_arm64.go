//go:build linux && arm64

package udptransport

// sysSENDMMSG is the sendmmsg syscall number on arm64 (matching the
// syscall package's SYS_SENDMMSG there; defined locally so both arches
// share one name with amd64, where the frozen tables lack it).
const sysSENDMMSG = 269
