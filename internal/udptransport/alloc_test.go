package udptransport

import (
	"testing"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/qlog"
)

// echoWireHandler is a zero-allocation WireHandler: the response is the
// query appended into the caller's buffer with the QR bit set. It isolates
// the transport's own packet path from handler allocations, exactly like
// the resolve-path guards isolate the cache-hit path from upstream cost.
type echoWireHandler struct{}

func (echoWireHandler) HandleWire(query []byte) ([]byte, error) {
	out := make([]byte, len(query))
	copy(out, query)
	out[2] |= 0x80
	return out, nil
}

func (echoWireHandler) AppendHandleWire(dst, query []byte) ([]byte, error) {
	dst = append(dst, query...)
	dst[2] |= 0x80
	return dst, nil
}

// newProcessHarness builds a listener worker detached from any socket,
// with one slot preloaded with wire: exactly the state the serve loop
// hands to process for each received datagram.
func newProcessHarness(t *testing.T, h Handler, wire []byte) *listenerWorker {
	t.Helper()
	w := &listenerWorker{
		srv:   &Server{wire: asWireHandler(h)},
		slots: make([]pktBuf, 1),
	}
	rx := make([]byte, maxPacket)
	copy(rx, wire)
	w.slots[0].in = rx[:len(wire)]
	return w
}

// TestServePacketPathZeroAlloc pins the transport's per-packet work —
// counters, malformed check, EDNS budget scan, handler dispatch through
// the caller-owned response buffer, truncation — at zero heap allocations,
// the contract that lets the front door run at wire speed without GC
// pressure. (The syscall layer is preallocated separately; the end-to-end
// gate lives in dnsnoise-bench -max-packet-allocs.)
func TestServePacketPathZeroAlloc(t *testing.T) {
	wire, err := dnsmsg.NewQuery(0x1234, "host.zone.example", dnsmsg.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	w := newProcessHarness(t, echoWireHandler{}, wire)
	b := &w.slots[0]
	w.process(b) // warm: grows the response buffer once
	if !b.send || len(b.out) != len(wire) {
		t.Fatalf("echo process: send=%v len=%d want %d", b.send, len(b.out), len(wire))
	}
	if allocs := testing.AllocsPerRun(1000, func() { w.process(b) }); allocs != 0 {
		t.Errorf("serve packet path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestServePacketPathZeroAllocTruncation covers the oversize branch: the
// budget scan plus in-place truncation must stay allocation-free too.
func TestServePacketPathZeroAllocTruncation(t *testing.T) {
	wire, err := dnsmsg.NewQuery(0x4321, "host.zone.example", dnsmsg.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// A handler whose response always exceeds the classic 512-byte budget.
	big := wireHandlerFunc(func(dst, query []byte) ([]byte, error) {
		dst = append(dst, query...)
		dst[2] |= 0x80
		for len(dst) <= minUDPPayload {
			dst = append(dst, 0)
		}
		return dst, nil
	})
	w := newProcessHarness(t, big, wire)
	b := &w.slots[0]
	w.process(b)
	if !b.send || len(b.out) > minUDPPayload || b.out[2]&0x02 == 0 {
		t.Fatalf("truncation process: send=%v len=%d tc=%v", b.send, len(b.out), b.out[2]&0x02 != 0)
	}
	before := w.stats.truncated.Load()
	if allocs := testing.AllocsPerRun(1000, func() { w.process(b) }); allocs != 0 {
		t.Errorf("truncating packet path allocates %.1f allocs/op, want 0", allocs)
	}
	if w.stats.truncated.Load() == before {
		t.Error("truncation counter did not advance")
	}
}

// TestServePacketPathZeroAllocMalformed: runts exit before the handler and
// allocate nothing.
func TestServePacketPathZeroAllocMalformed(t *testing.T) {
	w := newProcessHarness(t, echoWireHandler{}, []byte{1, 2, 3})
	b := &w.slots[0]
	if allocs := testing.AllocsPerRun(1000, func() { w.process(b) }); allocs != 0 {
		t.Errorf("malformed drop allocates %.1f allocs/op, want 0", allocs)
	}
	if w.stats.malformed.Load() == 0 {
		t.Error("malformed counter did not advance")
	}
}

// TestServePacketPathZeroAllocQlogMiss: with a query log attached, the
// sampling counter on unsampled packets is the only added work — still
// zero allocations (the sampled path decodes and is priced separately).
func TestServePacketPathZeroAllocQlogMiss(t *testing.T) {
	wire, err := dnsmsg.NewQuery(0x2222, "host.zone.example", dnsmsg.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	w := newProcessHarness(t, echoWireHandler{}, wire)
	l := qlog.New(qlog.Config{Sample: 1 << 30}) // effectively never samples
	l.AddSink(qlog.NewMemorySink(16))
	w.qrec = l.NewRecorder(0)
	b := &w.slots[0]
	w.process(b)
	if allocs := testing.AllocsPerRun(1000, func() { w.process(b) }); allocs != 0 {
		t.Errorf("qlog-miss packet path allocates %.1f allocs/op, want 0", allocs)
	}
}

// wireHandlerFunc adapts a function to both handler contracts.
type wireHandlerFunc func(dst, query []byte) ([]byte, error)

func (f wireHandlerFunc) HandleWire(query []byte) ([]byte, error) { return f(nil, query) }
func (f wireHandlerFunc) AppendHandleWire(dst, query []byte) ([]byte, error) {
	return f(dst, query)
}
