//go:build linux && amd64

package udptransport

// sysSENDMMSG is the sendmmsg syscall number, absent from the frozen
// syscall package on amd64 (the syscall shipped in Linux 3.0, after the
// package's tables were generated). recvmmsg predates the freeze and comes
// from syscall.SYS_RECVMMSG.
const sysSENDMMSG = 307
