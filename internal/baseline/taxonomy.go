// Package baseline implements the two prior systems the paper positions
// itself against (Section II-B):
//
//   - the treetop traffic taxonomy of Plonka & Barford (IMC 2008), which
//     splits DNS traffic into canonical, overloaded and unwanted classes —
//     the paper argues disposable domains are strictly more general than
//     the overloaded class; and
//
//   - the name-only detector of Yadav et al. (IMC 2010) for algorithmically
//     generated domains, which the paper notes cannot capture
//     disposability because it ignores caching behaviour.
//
// Both are used by the evaluation as baselines for the disposable zone
// miner.
package baseline

import (
	"strconv"
	"strings"

	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/resolver"
)

// Class is a treetop traffic class.
type Class int

// The three treetop classes.
const (
	// Canonical traffic maps names to routable addresses.
	Canonical Class = iota + 1
	// Overloaded traffic uses DNS for purposes beyond name-to-IP mapping
	// (blocklist verdicts, signaling answers in reserved space, TXT
	// payloads, reversed-IP query names).
	Overloaded
	// Unwanted traffic is unsuccessful resolution (NXDOMAIN et al.).
	Unwanted
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Canonical:
		return "canonical"
	case Overloaded:
		return "overloaded"
	case Unwanted:
		return "unwanted"
	default:
		return "unknown"
	}
}

// Classify assigns one observation to a treetop class.
func Classify(ob resolver.Observation) Class {
	if ob.RCode != dnsmsg.RCodeNoError {
		return Unwanted
	}
	if ob.RR.Name == "" {
		return Unwanted // NODATA carries no mapping either
	}
	if isOverloaded(ob.RR) {
		return Overloaded
	}
	return Canonical
}

// isOverloaded applies the treetop heuristics for non-mapping usage.
func isOverloaded(rr dnsmsg.RR) bool {
	switch rr.Type {
	case dnsmsg.TypeTXT:
		return true // text payloads are not address mappings
	case dnsmsg.TypeA:
		// Verdict-style answers in loopback/reserved space (the DNSBL and
		// file-reputation convention the paper describes for McAfee).
		if strings.HasPrefix(rr.RData, "127.") || strings.HasPrefix(rr.RData, "0.") {
			return true
		}
	case dnsmsg.TypeAAAA:
		if strings.HasPrefix(rr.RData, "100:") || strings.HasPrefix(rr.RData, "0:") {
			return true
		}
	}
	// Reversed-IPv4 query names (a.b.c.d.<zone>) signal blocklist lookups
	// regardless of the answer.
	return looksReversedIP(rr.Name)
}

// looksReversedIP reports whether the name starts with four dotted octets.
func looksReversedIP(name string) bool {
	labels := strings.SplitN(name, ".", 5)
	if len(labels) < 5 {
		return false
	}
	for _, l := range labels[:4] {
		v, err := strconv.Atoi(l)
		if err != nil || v < 0 || v > 255 {
			return false
		}
		// Reject octets with leading zeros beyond "0" itself, which are
		// tokens rather than octets.
		if len(l) > 1 && l[0] == '0' {
			return false
		}
	}
	return true
}

// TaxonomyCounter tallies observations per class, split by the ground-truth
// disposable label, to measure the overlap between "overloaded" and
// "disposable".
type TaxonomyCounter struct {
	// Counts[class] and DisposableCounts[class], indexed by Class.
	Counts           [4]uint64
	DisposableCounts [4]uint64
}

// Tap returns a resolver tap feeding the counter.
func (t *TaxonomyCounter) Tap() resolver.Tap {
	return resolver.TapFunc(func(ob resolver.Observation) {
		c := Classify(ob)
		t.Counts[c]++
		if ob.Category == 1 { // cache.CategoryDisposable
			t.DisposableCounts[c]++
		}
	})
}

// Share returns the class's fraction of all classified observations.
func (t *TaxonomyCounter) Share(c Class) float64 {
	var total uint64
	for _, n := range t.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(t.Counts[c]) / float64(total)
}

// DisposableRecall returns the fraction of disposable observations the
// class captures — the paper's point is that Overloaded alone captures only
// part of the disposable phenomenon.
func (t *TaxonomyCounter) DisposableRecall(c Class) float64 {
	var total uint64
	for _, n := range t.DisposableCounts {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(t.DisposableCounts[c]) / float64(total)
}
