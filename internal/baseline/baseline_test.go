package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dnsnoise/internal/cache"
	"dnsnoise/internal/dnsmsg"
	"dnsnoise/internal/labelgen"
	"dnsnoise/internal/resolver"
)

func obWith(rr dnsmsg.RR, rcode dnsmsg.RCode, cat cache.Category) resolver.Observation {
	return resolver.Observation{QName: rr.Name, RR: rr, RCode: rcode, Category: cat}
}

func TestClassifyTaxonomy(t *testing.T) {
	tests := []struct {
		name string
		ob   resolver.Observation
		want Class
	}{
		{
			name: "canonical A",
			ob:   obWith(dnsmsg.RR{Name: "www.example.com", Type: dnsmsg.TypeA, RData: "198.18.0.1"}, dnsmsg.RCodeNoError, cache.CategoryOther),
			want: Canonical,
		},
		{
			name: "nxdomain unwanted",
			ob:   resolver.Observation{QName: "missing.example.com", RCode: dnsmsg.RCodeNXDomain},
			want: Unwanted,
		},
		{
			name: "servfail unwanted",
			ob:   resolver.Observation{QName: "broken.example.com", RCode: dnsmsg.RCodeServFail},
			want: Unwanted,
		},
		{
			name: "loopback verdict overloaded",
			ob:   obWith(dnsmsg.RR{Name: "tok.avqs.mcafee.com", Type: dnsmsg.TypeA, RData: "127.0.4.2"}, dnsmsg.RCodeNoError, cache.CategoryDisposable),
			want: Overloaded,
		},
		{
			name: "TXT overloaded",
			ob:   obWith(dnsmsg.RR{Name: "x.example.com", Type: dnsmsg.TypeTXT, RData: "payload"}, dnsmsg.RCodeNoError, cache.CategoryOther),
			want: Overloaded,
		},
		{
			name: "reversed IP overloaded even with routable answer",
			ob:   obWith(dnsmsg.RR{Name: "4.3.2.1.zen.bl.test", Type: dnsmsg.TypeA, RData: "198.18.0.1"}, dnsmsg.RCodeNoError, cache.CategoryDisposable),
			want: Overloaded,
		},
		{
			name: "telemetry with routable answer stays canonical",
			ob:   obWith(dnsmsg.RR{Name: "load-0-p-01.up-99.dev.esoft.com", Type: dnsmsg.TypeA, RData: "198.18.0.9"}, dnsmsg.RCodeNoError, cache.CategoryDisposable),
			want: Canonical,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.ob); got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLooksReversedIP(t *testing.T) {
	tests := []struct {
		give string
		want bool
	}{
		{give: "4.3.2.1.bl.test", want: true},
		{give: "255.0.0.0.bl.test", want: true},
		{give: "256.1.2.3.bl.test", want: false},
		{give: "01.2.3.4.bl.test", want: false}, // leading zero = token
		{give: "a.b.c.d.bl.test", want: false},
		{give: "1.2.3.bl", want: false}, // too shallow
	}
	for _, tt := range tests {
		if got := looksReversedIP(tt.give); got != tt.want {
			t.Errorf("looksReversedIP(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestTaxonomyCounterOverlap(t *testing.T) {
	var tc TaxonomyCounter
	tap := tc.Tap()
	// Disposable traffic split across overloaded (reputation verdict) and
	// canonical (telemetry with routable answers) — the paper's claim that
	// disposable is broader than overloaded.
	tap.Observe(obWith(dnsmsg.RR{Name: "tok1.avqs.test", Type: dnsmsg.TypeA, RData: "127.0.0.1"}, dnsmsg.RCodeNoError, cache.CategoryDisposable))
	tap.Observe(obWith(dnsmsg.RR{Name: "up-1.dev.esoft.test", Type: dnsmsg.TypeA, RData: "198.18.0.2"}, dnsmsg.RCodeNoError, cache.CategoryDisposable))
	tap.Observe(obWith(dnsmsg.RR{Name: "www.ok.test", Type: dnsmsg.TypeA, RData: "198.18.0.3"}, dnsmsg.RCodeNoError, cache.CategoryOther))
	tap.Observe(resolver.Observation{QName: "typo.ok.test", RCode: dnsmsg.RCodeNXDomain})

	if got := tc.Share(Unwanted); got != 0.25 {
		t.Errorf("unwanted share = %v, want 0.25", got)
	}
	if got := tc.DisposableRecall(Overloaded); got != 0.5 {
		t.Errorf("overloaded disposable recall = %v, want 0.5", got)
	}
	if got := tc.DisposableRecall(Canonical); got != 0.5 {
		t.Errorf("canonical disposable recall = %v, want 0.5", got)
	}
}

// buildZones fabricates labeled zones: disposable ones carry algorithmic
// child labels, benign ones carry human host labels.
func buildZones(seed int64, nDisp, nBenign, perZone int) []LabeledZoneNames {
	rng := rand.New(rand.NewSource(seed))
	var out []LabeledZoneNames
	for i := 0; i < nDisp; i++ {
		z := LabeledZoneNames{Zone: fmt.Sprintf("sig%d.vendor.com", i), Disposable: true}
		for j := 0; j < perZone; j++ {
			z.Names = append(z.Names, labelgen.Token(rng, 22)+"."+z.Zone)
		}
		out = append(out, z)
	}
	for i := 0; i < nBenign; i++ {
		z := LabeledZoneNames{Zone: fmt.Sprintf("company%d.com", i)}
		for j := 0; j < perZone; j++ {
			z.Names = append(z.Names, labelgen.HostName(rng)+"."+z.Zone)
		}
		out = append(out, z)
	}
	return out
}

func TestYadavDetectsAlgorithmicZones(t *testing.T) {
	train := buildZones(1, 20, 20, 15)
	var y YadavDetector
	if err := y.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := buildZones(2, 10, 10, 15)
	var tp, fn, fp, tn int
	for _, z := range test {
		got, _, err := y.Detect(z.Zone, z.Names)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case z.Disposable && got:
			tp++
		case z.Disposable && !got:
			fn++
		case !z.Disposable && got:
			fp++
		default:
			tn++
		}
	}
	if tpr := float64(tp) / float64(tp+fn); tpr < 0.9 {
		t.Errorf("TPR = %.2f on clean token zones, want >= 0.9", tpr)
	}
	if fp > 1 {
		t.Errorf("false positives = %d on human zones", fp)
	}
}

// The paper's criticism in miniature ("Disposable domains are not only
// generated by an algorithm, but also have low cache hit rate"): a
// name-only detector cannot tell one-time algorithmic names from REUSED
// algorithmic names. A CDN shard zone — machine-generated labels that are
// heavily cached and decidedly not disposable — gets flagged anyway.
func TestYadavBlindToCaching(t *testing.T) {
	train := buildZones(3, 20, 20, 15)
	var y YadavDetector
	if err := y.Fit(train); err != nil {
		t.Fatal(err)
	}
	var cdn []string
	for i := 0; i < 30; i++ {
		cdn = append(cdn, fmt.Sprintf("e%04d.g.cdn-x.net", i*37))
	}
	got, score, err := y.Detect("g.cdn-x.net", cdn)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("expected the name-only detector to flag algorithmic CDN shards (score %.2f)", score)
	}
	// The flag is a disposability false positive: those names are reused
	// constantly. Only caching behaviour separates them — which is what
	// the miner's CHR features add (see the experiments baseline harness).
}

func TestYadavFitErrors(t *testing.T) {
	var y YadavDetector
	if err := y.Fit(nil); !errors.Is(err, ErrNoTraining) {
		t.Errorf("Fit(nil) = %v", err)
	}
	onlyPos := buildZones(4, 3, 0, 5)
	if err := y.Fit(onlyPos); !errors.Is(err, ErrNoTraining) {
		t.Errorf("Fit(single class) = %v", err)
	}
	if _, _, err := y.Detect("x.com", []string{"a.x.com"}); !errors.Is(err, ErrNoTraining) {
		t.Errorf("Detect unfitted = %v", err)
	}
}

func TestBigramJaccard(t *testing.T) {
	if got := bigramJaccard("mail", "mail"); got != 1 {
		t.Errorf("identical labels = %v, want 1", got)
	}
	if got := bigramJaccard("ab", "cd"); got != 0 {
		t.Errorf("disjoint labels = %v, want 0", got)
	}
	if got := bigramJaccard("a", "b"); got != 1 {
		t.Errorf("single-char labels (no bigrams) = %v, want 1", got)
	}
}

func TestClassString(t *testing.T) {
	if Canonical.String() != "canonical" || Overloaded.String() != "overloaded" ||
		Unwanted.String() != "unwanted" || Class(99).String() != "unknown" {
		t.Error("Class.String mismatch")
	}
}
