package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)

func TestGetMissThenHit(t *testing.T) {
	c := NewLRU[string, int](4)
	if _, ok := c.Get("a", t0); ok {
		t.Fatal("Get on empty cache should miss")
	}
	c.Put("a", 1, time.Minute, CategoryOther, t0)
	v, ok := c.Get("a", t0.Add(time.Second))
	if !ok || v != 1 {
		t.Fatalf("Get = (%v, %v), want (1, true)", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1, 30*time.Second, CategoryOther, t0)
	if _, ok := c.Get("a", t0.Add(29*time.Second)); !ok {
		t.Error("entry expired too early")
	}
	if _, ok := c.Get("a", t0.Add(30*time.Second)); ok {
		t.Error("entry should be expired exactly at TTL boundary")
	}
	st := c.Stats()
	if st.Expiries != 1 {
		t.Errorf("Expiries = %d, want 1", st.Expiries)
	}
	// Expired entry must have been removed.
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0 after expiry", c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	c.Put("b", 2, time.Hour, CategoryOther, t0)
	// Touch "a" so "b" becomes LRU.
	if _, ok := c.Get("a", t0); !ok {
		t.Fatal("a should be present")
	}
	c.Put("c", 3, time.Hour, CategoryOther, t0)
	if _, ok := c.Get("b", t0); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a", t0); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c", t0); !ok {
		t.Error("c should be present")
	}
}

func TestPrematureEvictionAccounting(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("nd1", 1, time.Hour, CategoryOther, t0)
	c.Put("nd2", 2, time.Hour, CategoryOther, t0)
	// A disposable insertion evicts a live non-disposable entry.
	c.Put("d1", 3, time.Minute, CategoryDisposable, t0)
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if got := st.PrematureEvictions[CategoryOther][CategoryDisposable]; got != 1 {
		t.Errorf("PrematureEvictions[other][disposable] = %d, want 1", got)
	}
	if got := st.PrematureEvictions[CategoryDisposable][CategoryOther]; got != 0 {
		t.Errorf("PrematureEvictions[disposable][other] = %d, want 0", got)
	}
}

func TestExpiredVictimIsNotPremature(t *testing.T) {
	c := NewLRU[string, int](1)
	c.Put("a", 1, time.Second, CategoryOther, t0)
	// Insert long after "a" expired: reclaim, not premature eviction.
	c.Put("b", 2, time.Minute, CategoryDisposable, t0.Add(time.Hour))
	st := c.Stats()
	if st.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0 (victim already expired)", st.Evictions)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1, time.Second, CategoryOther, t0)
	c.Put("a", 2, time.Hour, CategoryDisposable, t0)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	v, ok := c.Get("a", t0.Add(time.Minute))
	if !ok || v != 2 {
		t.Errorf("Get = (%v, %v), want (2, true) after refresh", v, ok)
	}
	ent, ok := c.Peek("a")
	if !ok || ent.Category != CategoryDisposable {
		t.Errorf("Peek = (%+v, %v), category should be refreshed", ent, ok)
	}
}

func TestPeekDoesNotPromoteOrCount(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	c.Put("b", 2, time.Hour, CategoryOther, t0)
	before := c.Stats()
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("Peek should find a")
	}
	if c.Stats() != before {
		t.Error("Peek must not change stats")
	}
	// "a" was peeked, not promoted, so it is still LRU and gets evicted.
	c.Put("c", 3, time.Hour, CategoryOther, t0)
	if _, ok := c.Peek("a"); ok {
		t.Error("a should have been evicted; Peek must not promote")
	}
}

func TestRemove(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	if !c.Remove("a") {
		t.Error("Remove should report true for present key")
	}
	if c.Remove("a") {
		t.Error("Remove should report false for absent key")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestCapacityFloor(t *testing.T) {
	c := NewLRU[string, int](0)
	if c.Capacity() != 1 {
		t.Errorf("Capacity = %d, want 1", c.Capacity())
	}
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	c.Put("b", 2, time.Hour, CategoryOther, t0)
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCategoryCounts(t *testing.T) {
	c := NewLRU[string, int](10)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("d%d", i), i, time.Hour, CategoryDisposable, t0)
	}
	for i := 0; i < 2; i++ {
		c.Put(fmt.Sprintf("n%d", i), i, time.Hour, CategoryOther, t0)
	}
	counts := c.CategoryCounts()
	if counts[CategoryDisposable] != 3 || counts[CategoryOther] != 2 {
		t.Errorf("CategoryCounts = %v, want [2 3]", counts)
	}
}

func TestHitRate(t *testing.T) {
	var st Stats
	if st.HitRate() != 0 {
		t.Error("zero stats HitRate should be 0")
	}
	st = Stats{Hits: 3, Misses: 1}
	if got := st.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryDisposable.String() != "disposable" || CategoryOther.String() != "other" {
		t.Error("Category.String mismatch")
	}
}

// Property: Len never exceeds capacity, and hits+misses equals the number of
// Get calls, across arbitrary operation sequences.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int(capRaw%20) + 1
		c := NewLRU[string, int](capacity)
		now := t0
		gets := uint64(0)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(40))
			now = now.Add(time.Duration(rng.Intn(10)) * time.Second)
			switch rng.Intn(3) {
			case 0:
				ttl := time.Duration(rng.Intn(60)+1) * time.Second
				c.Put(key, i, ttl, Category(rng.Intn(2)), now)
			case 1:
				c.Get(key, now)
				gets++
			default:
				c.Remove(key)
			}
			if c.Len() > capacity {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == gets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: an entry that is Put and immediately Get (same instant, positive
// TTL) always hits.
func TestImmediateHitProperty(t *testing.T) {
	f := func(key string, ttlRaw uint16) bool {
		c := NewLRU[string, string](4)
		ttl := time.Duration(ttlRaw%3600+1) * time.Second
		c.Put(key, "v", ttl, CategoryOther, t0)
		_, ok := c.Get(key, t0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPutLowPriorityIsFirstVictim(t *testing.T) {
	c := NewLRU[string, int](3)
	c.Put("hot1", 1, time.Hour, CategoryOther, t0)
	c.PutLowPriority("cold", 2, time.Hour, CategoryDisposable, t0)
	c.Put("hot2", 3, time.Hour, CategoryOther, t0)
	// Cache full; the next insert must evict the low-priority entry even
	// though hot1 is older.
	c.Put("hot3", 4, time.Hour, CategoryOther, t0)
	if _, ok := c.Peek("cold"); ok {
		t.Error("low-priority entry should be the first victim")
	}
	for _, k := range []string{"hot1", "hot2", "hot3"} {
		if _, ok := c.Peek(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
}

func TestPutLowPriorityRefreshStaysCold(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("hot", 1, time.Hour, CategoryOther, t0)
	c.PutLowPriority("cold", 2, time.Hour, CategoryDisposable, t0)
	// Refreshing the cold entry must not promote it.
	c.PutLowPriority("cold", 3, time.Hour, CategoryDisposable, t0)
	c.Put("hot2", 4, time.Hour, CategoryOther, t0)
	if _, ok := c.Peek("cold"); ok {
		t.Error("refreshed low-priority entry should still be the victim")
	}
	if _, ok := c.Peek("hot"); !ok {
		t.Error("hot entry should survive")
	}
}

func TestPutLowPriorityStillServesHits(t *testing.T) {
	c := NewLRU[string, int](4)
	c.PutLowPriority("cold", 1, time.Hour, CategoryDisposable, t0)
	v, ok := c.Get("cold", t0.Add(time.Second))
	if !ok || v != 1 {
		t.Errorf("Get = (%v, %v): low priority entries are still cached", v, ok)
	}
}
