// Package cache implements the fixed-capacity, TTL-aware resource-record
// cache used by each simulated recursive DNS server.
//
// The cache is the mechanism behind every caching observation in the paper:
// domain hit rates, cache hit rates, and the Section VI-A result that
// disposable domains prematurely evict useful entries. To support that last
// measurement, entries carry an opaque Category label and the cache counts
// evictions per (evicted category, inserting category) pair.
//
// The implementation is a slab-backed intrusive structure: entry payloads
// live in a contiguous arena, with a map from key to slot index. Two
// parallel link arenas thread through the slab: the eviction-policy order
// (policy.go — LRU by default, SIEVE or CLOCK selectable at construction)
// and the TTL timer wheel (wheel.go), which files every entry into a bucket
// for its expiry second so Advance reclaims whole buckets of dead entries
// without scanning live ones. Steady-state operation — hits, refreshes,
// reclaim, and evict-then-insert churn once the slab has grown to capacity —
// performs no heap allocation: there is no per-entry *list.Element, no
// boxing of values into interface{}, and every structural move touches only
// a handful of int32 links. Keys and values are typed via generics, so
// callers pay neither an allocation nor a type assertion per operation.
package cache

import (
	"sync/atomic"
	"time"
)

// Category labels a cached entry for eviction accounting. The simulation
// uses CategoryDisposable and CategoryOther, but any small set of labels
// works.
type Category uint8

// Categories used by the DNS simulation.
const (
	CategoryOther Category = iota
	CategoryDisposable
)

// String renders the category label.
func (c Category) String() string {
	switch c {
	case CategoryDisposable:
		return "disposable"
	default:
		return "other"
	}
}

// Entry is a cached value with an absolute expiry instant, as reported by
// Peek. It is a copy of the cache's internal slot, detached from the arena.
type Entry[K comparable, V any] struct {
	Key      K
	Value    V
	Expires  time.Time
	Category Category
}

// Stats counts cache events. PrematureEvictions counts policy evictions of
// entries that had NOT yet expired, split by the category of the victim and
// of the entry whose insertion forced the eviction.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Expiries   uint64 // lookups that found only an expired entry
	Insertions uint64
	Evictions  uint64 // all policy evictions (live victims only)
	Reclaims   uint64 // expired entries reclaimed by the timer wheel (Advance)
	// PrematureEvictions[victim][inserter]
	PrematureEvictions [2][2]uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// counters hold the cache's event counts as atomics, so Stats() and Len()
// may be polled (e.g. by a metrics scrape) while the owning server mutates
// the cache. The structural operations themselves remain single-owner.
type counters struct {
	hits       atomic.Uint64
	misses     atomic.Uint64
	expiries   atomic.Uint64
	insertions atomic.Uint64
	evictions  atomic.Uint64
	reclaims   atomic.Uint64
	premature  [2][2]atomic.Uint64
}

// nilIdx marks the absence of a slot in the intrusive links.
const nilIdx int32 = -1

// slot is one arena cell: the entry payload. The ordering and expiry links
// for a slot live at the same index in the policy order and timer wheel
// arenas, kept outside the generic payload so those structures are shared,
// non-generic code.
type slot[K comparable, V any] struct {
	key      K
	value    V
	expires  time.Time
	category Category
}

// LRU is a fixed-capacity cache with per-entry TTL and a pluggable eviction
// policy (the type name predates the policy seam; the default policy is
// LRU). Structural operations (Get/Put/Remove/Advance) are not safe for
// concurrent use — each simulated server owns one — but Len, LiveLen,
// Capacity, Stats and CategoryCounts are safe to call from other goroutines
// while the owner works.
type LRU[K comparable, V any] struct {
	capacity int
	slab     []slot[K, V]
	index    map[K]int32
	ord      order
	pol      Policy
	whl      wheel
	free     int32 // head of the free-slot chain (linked via ord.next)
	stats    counters
	size     atomic.Int64
	// catCount tracks live entries per category, maintained on every
	// insert/remove/evict/refresh so CategoryCounts is a constant-time
	// atomic read instead of a list walk.
	catCount [2]atomic.Int64
}

// New returns a cache holding at most capacity entries, evicting with the
// given policy. capacity < 1 is promoted to 1. The entry arena grows
// geometrically up to capacity on first use and is never released, so
// steady-state operation allocates nothing.
func New[K comparable, V any](capacity int, policy PolicyKind) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	c := &LRU[K, V]{
		capacity: capacity,
		index:    make(map[K]int32, capacity),
		ord:      newOrder(),
		pol:      policyFor(policy),
		free:     nilIdx,
	}
	c.whl.init()
	return c
}

// NewLRU returns a cache with the default (LRU) eviction policy.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return New[K, V](capacity, PolicyLRU)
}

// Len returns the number of entries currently stored, including any that
// have expired but not yet been reclaimed or touched.
func (c *LRU[K, V]) Len() int { return int(c.size.Load()) }

// LiveLen returns the number of stored entries not yet known to be expired:
// Len minus the entries sitting in wheel buckets wholly before the latest
// observed clock, i.e. entries awaiting reclaim because Advance lags the
// operations' timestamps. With Advance driven from the resolve path the gap
// is at most the current one-second bucket. Safe to call from a metrics
// scrape while the owner works.
func (c *LRU[K, V]) LiveLen() int {
	total := int(c.size.Load())
	w := &c.whl
	ct := w.clock.Load()
	cur := w.cur.Load()
	if ct <= cur || total == 0 {
		return total
	}
	expired := 0
	// Level-0 bucket b holds the tick t in [cur, cur+512) with t ≡ b;
	// the bucket is wholly expired once the clock passes t.
	for b := 0; b < wheelL0Size; b++ {
		n := int(w.counts[b].Load())
		if n == 0 {
			continue
		}
		t := cur + ((int64(b) - cur) & (wheelL0Size - 1))
		if t < ct {
			expired += n
		}
	}
	// Level-1 bucket j holds a 512-tick window; expired only once the
	// whole window has passed. The overflow bucket always counts live.
	curWin := cur >> wheelL0Bits
	for j := 0; j < wheelL1Size; j++ {
		n := int(w.counts[wheelL0Size+j].Load())
		if n == 0 {
			continue
		}
		win := curWin + ((int64(j) - curWin) & (wheelL1Size - 1))
		if (win+1)<<wheelL0Bits <= ct {
			expired += n
		}
	}
	// The reads above race benignly with the owner; clamp to sane bounds.
	if expired > total {
		expired = total
	}
	return total - expired
}

// Capacity returns the configured maximum entry count.
func (c *LRU[K, V]) Capacity() int { return c.capacity }

// Policy returns the eviction policy the cache was built with.
func (c *LRU[K, V]) Policy() PolicyKind { return c.pol.Kind() }

// Stats returns a copy of the event counters.
func (c *LRU[K, V]) Stats() Stats {
	var s Stats
	s.Hits = c.stats.hits.Load()
	s.Misses = c.stats.misses.Load()
	s.Expiries = c.stats.expiries.Load()
	s.Insertions = c.stats.insertions.Load()
	s.Evictions = c.stats.evictions.Load()
	s.Reclaims = c.stats.reclaims.Load()
	for v := range c.stats.premature {
		for i := range c.stats.premature[v] {
			s.PrematureEvictions[v][i] = c.stats.premature[v][i].Load()
		}
	}
	return s
}

// Advance moves the timer wheel up to now, reclaiming every entry whose
// expiry second has wholly passed. Each elapsed tick empties one bucket —
// dead entries are reclaimed in whole lists without examining live ones —
// so occupancy tracks live entries and eviction victims are never
// already-dead. Reclaims are counted in Stats.Reclaims; they are neither
// expiries (no lookup happened) nor evictions (no insertion forced them).
// Idle caches fast-forward in O(1). Allocates nothing.
func (c *LRU[K, V]) Advance(now time.Time) {
	w := &c.whl
	if !w.started {
		return
	}
	n := w.tickOf(now)
	if n > w.clock.Load() {
		w.clock.Store(n)
	}
	cur := w.cur.Load()
	if n <= cur {
		return
	}
	if w.count == 0 {
		w.cur.Store(n)
		return
	}
	for cur < n {
		// Every entry in tick cur's bucket has expires < base+cur+1 ≤ now.
		b := cur & (wheelL0Size - 1)
		for i := w.heads[b]; i != nilIdx; i = w.heads[b] {
			c.removeSlot(i)
			c.stats.reclaims.Add(1)
		}
		cur++
		w.cur.Store(cur)
		if cur&(wheelL0Span-1) == 0 {
			w.cascade(cur)
		}
		if w.count == 0 {
			cur = n
			w.cur.Store(n)
		}
	}
}

// Get looks up key at instant now. A present, unexpired entry counts as a
// hit and is reported to the eviction policy (LRU promotes it; SIEVE/CLOCK
// set its reference bit). A present but expired entry is removed, counted
// as an expiry AND a miss (the resolver must re-fetch) — this lazy check
// backstops the wheel for the in-progress second and for callers that never
// Advance.
func (c *LRU[K, V]) Get(key K, now time.Time) (V, bool) {
	c.whl.observe(now)
	var zero V
	i, ok := c.index[key]
	if !ok {
		c.stats.misses.Add(1)
		return zero, false
	}
	s := &c.slab[i]
	if !now.Before(s.expires) {
		c.removeSlot(i)
		c.stats.expiries.Add(1)
		c.stats.misses.Add(1)
		return zero, false
	}
	c.pol.touch(&c.ord, i)
	c.stats.hits.Add(1)
	return s.value, true
}

// Peek returns a copy of the entry without promoting it or counting a
// hit/miss. Expired entries are still returned; the caller can inspect
// Expires.
func (c *LRU[K, V]) Peek(key K) (Entry[K, V], bool) {
	i, ok := c.index[key]
	if !ok {
		return Entry[K, V]{}, false
	}
	s := &c.slab[i]
	return Entry[K, V]{Key: s.key, Value: s.value, Expires: s.expires, Category: s.category}, true
}

// Eviction describes what an insertion displaced, for the query-level
// event log. The zero value means the insertion evicted nothing (the
// cache had room, or the key was refreshed in place).
type Eviction struct {
	Evicted   bool     // a policy victim was removed to make room
	Premature bool     // the victim had not yet expired
	Victim    Category // the victim's category (meaningful when Evicted)
}

// Put inserts or refreshes key with the given value, TTL and category.
// When the cache is full, the eviction policy picks a victim; if that
// victim had not yet expired the eviction is counted as premature, attributed
// to the inserting entry's category.
func (c *LRU[K, V]) Put(key K, value V, ttl time.Duration, cat Category, now time.Time) {
	c.put(key, value, ttl, cat, now, false)
}

// PutEv is Put returning what the insertion evicted.
func (c *LRU[K, V]) PutEv(key K, value V, ttl time.Duration, cat Category, now time.Time) Eviction {
	return c.put(key, value, ttl, cat, now, false)
}

// PutLowPriority inserts key at the cold end of the eviction order: under
// the default LRU policy it is the next eviction victim and can never push
// out another live entry (the eviction mitigation of paper Section VI-A —
// disposable answers are cached, but at the lowest priority). SIEVE and
// CLOCK honor the cold placement but their scan state may examine other
// entries first. Refreshing an existing entry keeps it cold.
func (c *LRU[K, V]) PutLowPriority(key K, value V, ttl time.Duration, cat Category, now time.Time) {
	c.put(key, value, ttl, cat, now, true)
}

// PutLowPriorityEv is PutLowPriority returning what the insertion
// evicted.
func (c *LRU[K, V]) PutLowPriorityEv(key K, value V, ttl time.Duration, cat Category, now time.Time) Eviction {
	return c.put(key, value, ttl, cat, now, true)
}

func (c *LRU[K, V]) put(key K, value V, ttl time.Duration, cat Category, now time.Time, low bool) Eviction {
	c.stats.insertions.Add(1)
	w := &c.whl
	if !w.started {
		w.started = true
		w.base = now.Unix()
	}
	w.observe(now)
	expires := now.Add(ttl)
	if i, ok := c.index[key]; ok {
		s := &c.slab[i]
		if s.category != cat {
			c.catCount[s.category].Add(-1)
			c.catCount[cat].Add(1)
		}
		s.value = value
		s.expires = expires
		s.category = cat
		c.pol.refresh(&c.ord, i, low)
		w.unfile(i)
		w.file(i, w.tickOf(expires))
		return Eviction{}
	}
	var ev Eviction
	if int(c.size.Load()) >= c.capacity {
		ev = c.evictOldest(cat, now)
	}
	i := c.allocSlot()
	s := &c.slab[i]
	s.key = key
	s.value = value
	s.expires = expires
	s.category = cat
	c.pol.insert(&c.ord, i, low)
	w.file(i, w.tickOf(expires))
	c.index[key] = i
	c.size.Add(1)
	c.catCount[cat].Add(1)
	return ev
}

// Remove deletes key if present and reports whether it was.
func (c *LRU[K, V]) Remove(key K) bool {
	i, ok := c.index[key]
	if !ok {
		return false
	}
	c.removeSlot(i)
	return true
}

// evictOldest removes the policy's victim to make room for an insertion by
// category inserter. Expired victims are reclaimed silently; live victims
// count as (premature) evictions. Either way the removal is reported so
// the query log can attribute eviction causes per query.
func (c *LRU[K, V]) evictOldest(inserter Category, now time.Time) Eviction {
	i := c.pol.victim(&c.ord)
	if i == nilIdx {
		return Eviction{}
	}
	s := &c.slab[i]
	ev := Eviction{Evicted: true, Victim: s.category, Premature: now.Before(s.expires)}
	if ev.Premature {
		c.stats.evictions.Add(1)
		c.stats.premature[s.category][inserter].Add(1)
	}
	c.removeSlot(i)
	return ev
}

// CategoryCounts returns how many currently cached entries belong to each
// category (expired-but-unreclaimed entries included). Index by Category.
// It reads two atomics — safe to call from a metrics scrape while the
// owning goroutine mutates the cache.
func (c *LRU[K, V]) CategoryCounts() [2]int {
	return [2]int{
		int(c.catCount[0].Load()),
		int(c.catCount[1].Load()),
	}
}

// allocSlot returns a free arena index, growing the slab (and the order and
// wheel arenas in lockstep) geometrically via append until it reaches
// capacity. After the slab is full the free chain always has a slot
// available, so no allocation ever happens again.
func (c *LRU[K, V]) allocSlot() int32 {
	if c.free != nilIdx {
		i := c.free
		c.free = c.ord.next[i]
		c.ord.next[i] = nilIdx
		return i
	}
	c.slab = append(c.slab, slot[K, V]{})
	c.ord.grow()
	c.whl.grow()
	return int32(len(c.slab) - 1)
}

// removeSlot unfiles slot i from the wheel and the policy order, drops its
// index entry, zeroes the payload (so the arena does not pin the evicted
// key/value for the garbage collector) and pushes the slot onto the free
// chain.
func (c *LRU[K, V]) removeSlot(i int32) {
	s := &c.slab[i]
	delete(c.index, s.key)
	c.whl.unfile(i)
	c.pol.remove(&c.ord, i)
	c.catCount[s.category].Add(-1)
	var zero slot[K, V]
	*s = zero
	c.ord.next[i] = c.free
	c.free = i
	c.size.Add(-1)
}
