// Package cache implements the fixed-capacity, TTL-aware LRU resource-record
// cache used by each simulated recursive DNS server.
//
// The cache is the mechanism behind every caching observation in the paper:
// domain hit rates, cache hit rates, and the Section VI-A result that
// disposable domains prematurely evict useful entries. To support that last
// measurement, entries carry an opaque Category label and the cache counts
// evictions per (evicted category, inserting category) pair.
//
// The implementation is a slab-backed intrusive list: entries live in a
// contiguous arena indexed by int32 prev/next links, with a map from key to
// slot index. Steady-state operation — hits, refreshes, and evict-then-insert
// churn once the slab has grown to capacity — performs no heap allocation:
// there is no per-entry *list.Element, no boxing of values into interface{},
// and promotion to the front of the recency order touches only three slots'
// links. Keys and values are typed via generics, so callers pay neither an
// allocation nor a type assertion per operation.
package cache

import (
	"sync/atomic"
	"time"
)

// Category labels a cached entry for eviction accounting. The simulation
// uses CategoryDisposable and CategoryOther, but any small set of labels
// works.
type Category uint8

// Categories used by the DNS simulation.
const (
	CategoryOther Category = iota
	CategoryDisposable
)

// String renders the category label.
func (c Category) String() string {
	switch c {
	case CategoryDisposable:
		return "disposable"
	default:
		return "other"
	}
}

// Entry is a cached value with an absolute expiry instant, as reported by
// Peek. It is a copy of the cache's internal slot, detached from the arena.
type Entry[K comparable, V any] struct {
	Key      K
	Value    V
	Expires  time.Time
	Category Category
}

// Stats counts cache events. PrematureEvictions counts LRU evictions of
// entries that had NOT yet expired, split by the category of the victim and
// of the entry whose insertion forced the eviction.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Expiries   uint64 // lookups that found only an expired entry
	Insertions uint64
	Evictions  uint64 // all LRU evictions (live victims only)
	// PrematureEvictions[victim][inserter]
	PrematureEvictions [2][2]uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// counters hold the cache's event counts as atomics, so Stats() and Len()
// may be polled (e.g. by a metrics scrape) while the owning server mutates
// the cache. The structural operations themselves remain single-owner.
type counters struct {
	hits       atomic.Uint64
	misses     atomic.Uint64
	expiries   atomic.Uint64
	insertions atomic.Uint64
	evictions  atomic.Uint64
	premature  [2][2]atomic.Uint64
}

// nilIdx marks the absence of a slot in the intrusive links.
const nilIdx int32 = -1

// slot is one arena cell: the entry payload plus its recency-list links.
// Free slots are chained through next.
type slot[K comparable, V any] struct {
	key      K
	value    V
	expires  time.Time
	category Category
	prev     int32
	next     int32
}

// LRU is a fixed-capacity least-recently-used cache with per-entry TTL.
// Structural operations (Get/Put/Remove) are not safe for concurrent use —
// each simulated server owns one — but Len, Capacity, Stats and
// CategoryCounts are safe to call from other goroutines while the owner
// works.
type LRU[K comparable, V any] struct {
	capacity int
	slab     []slot[K, V]
	index    map[K]int32
	head     int32 // most recently used
	tail     int32 // least recently used
	free     int32 // head of the free-slot chain (linked via next)
	stats    counters
	size     atomic.Int64
	// catCount tracks live entries per category, maintained on every
	// insert/remove/evict/refresh so CategoryCounts is a constant-time
	// atomic read instead of a list walk.
	catCount [2]atomic.Int64
}

// NewLRU returns a cache holding at most capacity entries. capacity < 1 is
// promoted to 1. The entry arena grows geometrically up to capacity on first
// use and is never released, so steady-state operation allocates nothing.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		index:    make(map[K]int32, capacity),
		head:     nilIdx,
		tail:     nilIdx,
		free:     nilIdx,
	}
}

// Len returns the number of entries currently stored, including any that
// have expired but not yet been touched.
func (c *LRU[K, V]) Len() int { return int(c.size.Load()) }

// Capacity returns the configured maximum entry count.
func (c *LRU[K, V]) Capacity() int { return c.capacity }

// Stats returns a copy of the event counters.
func (c *LRU[K, V]) Stats() Stats {
	var s Stats
	s.Hits = c.stats.hits.Load()
	s.Misses = c.stats.misses.Load()
	s.Expiries = c.stats.expiries.Load()
	s.Insertions = c.stats.insertions.Load()
	s.Evictions = c.stats.evictions.Load()
	for v := range c.stats.premature {
		for i := range c.stats.premature[v] {
			s.PrematureEvictions[v][i] = c.stats.premature[v][i].Load()
		}
	}
	return s
}

// Get looks up key at instant now. A present, unexpired entry counts as a
// hit and is promoted to most-recently-used. A present but expired entry is
// removed, counted as an expiry AND a miss (the resolver must re-fetch).
func (c *LRU[K, V]) Get(key K, now time.Time) (V, bool) {
	var zero V
	i, ok := c.index[key]
	if !ok {
		c.stats.misses.Add(1)
		return zero, false
	}
	s := &c.slab[i]
	if !now.Before(s.expires) {
		c.removeSlot(i)
		c.stats.expiries.Add(1)
		c.stats.misses.Add(1)
		return zero, false
	}
	c.moveToFront(i)
	c.stats.hits.Add(1)
	return s.value, true
}

// Peek returns a copy of the entry without promoting it or counting a
// hit/miss. Expired entries are still returned; the caller can inspect
// Expires.
func (c *LRU[K, V]) Peek(key K) (Entry[K, V], bool) {
	i, ok := c.index[key]
	if !ok {
		return Entry[K, V]{}, false
	}
	s := &c.slab[i]
	return Entry[K, V]{Key: s.key, Value: s.value, Expires: s.expires, Category: s.category}, true
}

// Eviction describes what an insertion displaced, for the query-level
// event log. The zero value means the insertion evicted nothing (the
// cache had room, or the key was refreshed in place).
type Eviction struct {
	Evicted   bool     // an LRU victim was removed to make room
	Premature bool     // the victim had not yet expired
	Victim    Category // the victim's category (meaningful when Evicted)
}

// Put inserts or refreshes key with the given value, TTL and category.
// When the cache is full, the least-recently-used entry is evicted; if that
// victim had not yet expired the eviction is counted as premature, attributed
// to the inserting entry's category.
func (c *LRU[K, V]) Put(key K, value V, ttl time.Duration, cat Category, now time.Time) {
	c.put(key, value, ttl, cat, now, false)
}

// PutEv is Put returning what the insertion evicted.
func (c *LRU[K, V]) PutEv(key K, value V, ttl time.Duration, cat Category, now time.Time) Eviction {
	return c.put(key, value, ttl, cat, now, false)
}

// PutLowPriority inserts key at the cold end of the recency order: it is
// the next eviction victim and can never push out another live entry
// (the eviction mitigation of paper Section VI-A — disposable answers are
// cached, but at the lowest priority). Refreshing an existing entry keeps
// it cold.
func (c *LRU[K, V]) PutLowPriority(key K, value V, ttl time.Duration, cat Category, now time.Time) {
	c.put(key, value, ttl, cat, now, true)
}

// PutLowPriorityEv is PutLowPriority returning what the insertion
// evicted.
func (c *LRU[K, V]) PutLowPriorityEv(key K, value V, ttl time.Duration, cat Category, now time.Time) Eviction {
	return c.put(key, value, ttl, cat, now, true)
}

func (c *LRU[K, V]) put(key K, value V, ttl time.Duration, cat Category, now time.Time, low bool) Eviction {
	c.stats.insertions.Add(1)
	expires := now.Add(ttl)
	if i, ok := c.index[key]; ok {
		s := &c.slab[i]
		if s.category != cat {
			c.catCount[s.category].Add(-1)
			c.catCount[cat].Add(1)
		}
		s.value = value
		s.expires = expires
		s.category = cat
		if low {
			c.moveToBack(i)
		} else {
			c.moveToFront(i)
		}
		return Eviction{}
	}
	var ev Eviction
	if int(c.size.Load()) >= c.capacity {
		ev = c.evictOldest(cat, now)
	}
	i := c.allocSlot()
	s := &c.slab[i]
	s.key = key
	s.value = value
	s.expires = expires
	s.category = cat
	if low {
		c.pushBack(i)
	} else {
		c.pushFront(i)
	}
	c.index[key] = i
	c.size.Add(1)
	c.catCount[cat].Add(1)
	return ev
}

// Remove deletes key if present and reports whether it was.
func (c *LRU[K, V]) Remove(key K) bool {
	i, ok := c.index[key]
	if !ok {
		return false
	}
	c.removeSlot(i)
	return true
}

// evictOldest removes the LRU entry to make room for an insertion by
// category inserter. Expired victims are reclaimed silently; live victims
// count as (premature) evictions. Either way the removal is reported so
// the query log can attribute eviction causes per query.
func (c *LRU[K, V]) evictOldest(inserter Category, now time.Time) Eviction {
	i := c.tail
	if i == nilIdx {
		return Eviction{}
	}
	s := &c.slab[i]
	ev := Eviction{Evicted: true, Victim: s.category, Premature: now.Before(s.expires)}
	if ev.Premature {
		c.stats.evictions.Add(1)
		c.stats.premature[s.category][inserter].Add(1)
	}
	c.removeSlot(i)
	return ev
}

// CategoryCounts returns how many currently cached entries belong to each
// category (expired-but-untouched entries included). Index by Category.
// It reads two atomics — safe to call from a metrics scrape while the
// owning goroutine mutates the cache.
func (c *LRU[K, V]) CategoryCounts() [2]int {
	return [2]int{
		int(c.catCount[0].Load()),
		int(c.catCount[1].Load()),
	}
}

// allocSlot returns a free arena index, growing the slab geometrically
// (via append) until it reaches capacity. After the slab is full the free
// chain always has a slot available, so no allocation ever happens again.
func (c *LRU[K, V]) allocSlot() int32 {
	if c.free != nilIdx {
		i := c.free
		c.free = c.slab[i].next
		return i
	}
	c.slab = append(c.slab, slot[K, V]{})
	return int32(len(c.slab) - 1)
}

// removeSlot unlinks slot i, drops its index entry, zeroes the payload (so
// the arena does not pin the evicted key/value for the garbage collector)
// and pushes the slot onto the free chain.
func (c *LRU[K, V]) removeSlot(i int32) {
	s := &c.slab[i]
	delete(c.index, s.key)
	c.unlink(i)
	c.catCount[s.category].Add(-1)
	var zero slot[K, V]
	*s = zero
	s.next = c.free
	c.free = i
	c.size.Add(-1)
}

func (c *LRU[K, V]) unlink(i int32) {
	s := &c.slab[i]
	if s.prev != nilIdx {
		c.slab[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next != nilIdx {
		c.slab[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev = nilIdx
	s.next = nilIdx
}

func (c *LRU[K, V]) pushFront(i int32) {
	s := &c.slab[i]
	s.prev = nilIdx
	s.next = c.head
	if c.head != nilIdx {
		c.slab[c.head].prev = i
	}
	c.head = i
	if c.tail == nilIdx {
		c.tail = i
	}
}

func (c *LRU[K, V]) pushBack(i int32) {
	s := &c.slab[i]
	s.next = nilIdx
	s.prev = c.tail
	if c.tail != nilIdx {
		c.slab[c.tail].next = i
	}
	c.tail = i
	if c.head == nilIdx {
		c.head = i
	}
}

func (c *LRU[K, V]) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

func (c *LRU[K, V]) moveToBack(i int32) {
	if c.tail == i {
		return
	}
	c.unlink(i)
	c.pushBack(i)
}
