// Package cache implements the fixed-capacity, TTL-aware LRU resource-record
// cache used by each simulated recursive DNS server.
//
// The cache is the mechanism behind every caching observation in the paper:
// domain hit rates, cache hit rates, and the Section VI-A result that
// disposable domains prematurely evict useful entries. To support that last
// measurement, entries carry an opaque Category label and the cache counts
// evictions per (evicted category, inserting category) pair.
package cache

import (
	"container/list"
	"sync/atomic"
	"time"
)

// Category labels a cached entry for eviction accounting. The simulation
// uses CategoryDisposable and CategoryOther, but any small set of labels
// works.
type Category uint8

// Categories used by the DNS simulation.
const (
	CategoryOther Category = iota
	CategoryDisposable
)

// String renders the category label.
func (c Category) String() string {
	switch c {
	case CategoryDisposable:
		return "disposable"
	default:
		return "other"
	}
}

// Entry is a cached value with an absolute expiry instant.
type Entry struct {
	Key      string
	Value    any
	Expires  time.Time
	Category Category
}

// Stats counts cache events. PrematureEvictions counts LRU evictions of
// entries that had NOT yet expired, split by the category of the victim and
// of the entry whose insertion forced the eviction.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Expiries   uint64 // lookups that found only an expired entry
	Insertions uint64
	Evictions  uint64 // all LRU evictions (live victims only)
	// PrematureEvictions[victim][inserter]
	PrematureEvictions [2][2]uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// counters hold the cache's event counts as atomics, so Stats() and Len()
// may be polled (e.g. by a metrics scrape) while the owning server mutates
// the cache. The structural operations themselves remain single-owner.
type counters struct {
	hits       atomic.Uint64
	misses     atomic.Uint64
	expiries   atomic.Uint64
	insertions atomic.Uint64
	evictions  atomic.Uint64
	premature  [2][2]atomic.Uint64
}

// LRU is a fixed-capacity least-recently-used cache with per-entry TTL.
// Structural operations (Get/Put/Remove) are not safe for concurrent use —
// each simulated server owns one — but Len, Capacity and Stats are safe to
// call from other goroutines while the owner works.
type LRU struct {
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	stats    counters
	size     atomic.Int64
}

// NewLRU returns a cache holding at most capacity entries. capacity < 1 is
// promoted to 1.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Len returns the number of entries currently stored, including any that
// have expired but not yet been touched.
func (c *LRU) Len() int { return int(c.size.Load()) }

// Capacity returns the configured maximum entry count.
func (c *LRU) Capacity() int { return c.capacity }

// Stats returns a copy of the event counters.
func (c *LRU) Stats() Stats {
	var s Stats
	s.Hits = c.stats.hits.Load()
	s.Misses = c.stats.misses.Load()
	s.Expiries = c.stats.expiries.Load()
	s.Insertions = c.stats.insertions.Load()
	s.Evictions = c.stats.evictions.Load()
	for v := range c.stats.premature {
		for i := range c.stats.premature[v] {
			s.PrematureEvictions[v][i] = c.stats.premature[v][i].Load()
		}
	}
	return s
}

// Get looks up key at instant now. A present, unexpired entry counts as a
// hit and is promoted to most-recently-used. A present but expired entry is
// removed, counted as an expiry AND a miss (the resolver must re-fetch).
func (c *LRU) Get(key string, now time.Time) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		c.stats.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*Entry)
	if !now.Before(ent.Expires) {
		c.removeElement(el)
		c.stats.expiries.Add(1)
		c.stats.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.hits.Add(1)
	return ent.Value, true
}

// Peek returns the entry without promoting it or counting a hit/miss.
// Expired entries are still returned; the caller can inspect Expires.
func (c *LRU) Peek(key string) (*Entry, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*Entry)
	cp := *ent
	return &cp, true
}

// Put inserts or refreshes key with the given value, TTL and category.
// When the cache is full, the least-recently-used entry is evicted; if that
// victim had not yet expired the eviction is counted as premature, attributed
// to the inserting entry's category.
func (c *LRU) Put(key string, value any, ttl time.Duration, cat Category, now time.Time) {
	c.put(key, value, ttl, cat, now, false)
}

// PutLowPriority inserts key at the cold end of the recency order: it is
// the next eviction victim and can never push out another live entry
// (the eviction mitigation of paper Section VI-A — disposable answers are
// cached, but at the lowest priority). Refreshing an existing entry keeps
// it cold.
func (c *LRU) PutLowPriority(key string, value any, ttl time.Duration, cat Category, now time.Time) {
	c.put(key, value, ttl, cat, now, true)
}

func (c *LRU) put(key string, value any, ttl time.Duration, cat Category, now time.Time, low bool) {
	c.stats.insertions.Add(1)
	expires := now.Add(ttl)
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*Entry)
		ent.Value = value
		ent.Expires = expires
		ent.Category = cat
		if low {
			c.order.MoveToBack(el)
		} else {
			c.order.MoveToFront(el)
		}
		return
	}
	if c.order.Len() >= c.capacity {
		c.evictOldest(cat, now)
	}
	ent := &Entry{Key: key, Value: value, Expires: expires, Category: cat}
	if low {
		c.items[key] = c.order.PushBack(ent)
	} else {
		c.items[key] = c.order.PushFront(ent)
	}
	c.size.Add(1)
}

// Remove deletes key if present and reports whether it was.
func (c *LRU) Remove(key string) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// evictOldest removes the LRU entry to make room for an insertion by
// category inserter. Expired victims are reclaimed silently; live victims
// count as (premature) evictions.
func (c *LRU) evictOldest(inserter Category, now time.Time) {
	el := c.order.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*Entry)
	if now.Before(ent.Expires) {
		c.stats.evictions.Add(1)
		c.stats.premature[ent.Category][inserter].Add(1)
	}
	c.removeElement(el)
}

func (c *LRU) removeElement(el *list.Element) {
	ent := el.Value.(*Entry)
	delete(c.items, ent.Key)
	c.order.Remove(el)
	c.size.Add(-1)
}

// CategoryCounts returns how many currently cached entries belong to each
// category (expired-but-untouched entries included). Index by Category.
func (c *LRU) CategoryCounts() [2]int {
	var out [2]int
	for el := c.order.Front(); el != nil; el = el.Next() {
		out[el.Value.(*Entry).Category]++
	}
	return out
}
