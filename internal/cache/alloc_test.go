package cache

import (
	"fmt"
	"testing"
	"time"
)

// TestGetZeroAlloc: a hit — lookup plus promotion to most-recently-used —
// must not allocate. This is the slab design's core claim: promotion only
// rewrites int32 links in the arena.
func TestGetZeroAlloc(t *testing.T) {
	c := NewLRU[string, int](64)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, time.Hour, CategoryOther, t0)
	}
	now := t0.Add(time.Second)
	keys := make([]string, 32)
	for j := range keys {
		keys[j] = fmt.Sprintf("k%d", j)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		i = (i + 7) % 32 // rotate so promotions actually move slots
		if _, ok := c.Get(keys[i], now); !ok {
			t.Fatal("expected hit")
		}
	})
	if allocs != 0 {
		t.Errorf("Get hit allocated %.1f times per op, want 0", allocs)
	}
}

// TestPutRefreshZeroAlloc: refreshing an existing key (the common TTL-renew
// path) rewrites the slot in place — no allocation.
func TestPutRefreshZeroAlloc(t *testing.T) {
	c := NewLRU[string, int](16)
	c.Put("key", 1, time.Hour, CategoryOther, t0)
	c.PutLowPriority("cold", 2, time.Hour, CategoryDisposable, t0)
	allocs := testing.AllocsPerRun(500, func() {
		c.Put("key", 3, time.Hour, CategoryOther, t0)
		c.PutLowPriority("cold", 4, time.Hour, CategoryDisposable, t0)
	})
	if allocs != 0 {
		t.Errorf("Put refresh allocated %.1f times per op, want 0", allocs)
	}
}

// TestCategoryCountsTracksMutations covers the atomic per-category counts
// through the full mutation surface: insert, refresh with a category flip,
// remove, expiry reclaim, and eviction.
func TestCategoryCountsTracksMutations(t *testing.T) {
	c := NewLRU[string, int](2)
	check := func(want [2]int, step string) {
		t.Helper()
		if got := c.CategoryCounts(); got != want {
			t.Fatalf("%s: CategoryCounts = %v, want %v", step, got, want)
		}
	}
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	check([2]int{1, 0}, "insert other")
	c.Put("a", 1, time.Hour, CategoryDisposable, t0)
	check([2]int{0, 1}, "refresh flips category")
	c.Put("b", 2, time.Second, CategoryOther, t0)
	check([2]int{1, 1}, "second insert")
	// Expired lookup reclaims the entry.
	if _, ok := c.Get("b", t0.Add(time.Minute)); ok {
		t.Fatal("b should have expired")
	}
	check([2]int{0, 1}, "expiry reclaim")
	c.Put("c", 3, time.Hour, CategoryOther, t0)
	c.Put("d", 4, time.Hour, CategoryOther, t0) // evicts the LRU
	check([2]int{2, 0}, "eviction")
	c.Remove("d")
	check([2]int{1, 0}, "remove")
}

// TestSlabReuseAfterChurn: the arena must recycle slots through the free
// chain — heavy insert/evict churn keeps Len bounded by capacity and the
// recency order consistent.
func TestSlabReuseAfterChurn(t *testing.T) {
	const capacity = 8
	c := NewLRU[int, int](capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(i, i, time.Hour, Category(i%2), t0)
		if c.Len() > capacity {
			t.Fatalf("Len %d exceeds capacity %d", c.Len(), capacity)
		}
	}
	// The survivors are the last `capacity` keys, newest first.
	for i := 10*capacity - capacity; i < 10*capacity; i++ {
		if _, ok := c.Peek(i); !ok {
			t.Errorf("key %d should have survived", i)
		}
	}
	counts := c.CategoryCounts()
	if counts[0]+counts[1] != capacity {
		t.Errorf("category counts %v do not sum to capacity %d", counts, capacity)
	}
}
