package cache

import (
	"fmt"
	"testing"
	"time"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, kind := range Policies() {
		got, err := ParsePolicy(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParsePolicy(%q) = (%v, %v), want (%v, nil)", kind.String(), got, err, kind)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Error("ParsePolicy should reject unknown policies")
	}
	if got, err := ParsePolicy(""); err != nil || got != PolicyLRU {
		t.Errorf("ParsePolicy(\"\") = (%v, %v), want the LRU default", got, err)
	}
}

func TestNewPolicyAccessor(t *testing.T) {
	for _, kind := range Policies() {
		c := New[string, int](4, kind)
		if c.Policy() != kind {
			t.Errorf("Policy() = %v, want %v", c.Policy(), kind)
		}
	}
	if NewLRU[string, int](4).Policy() != PolicyLRU {
		t.Error("NewLRU must default to the LRU policy")
	}
}

// TestSieveVictimSelection pins the SIEVE mechanics: the hand sweeps from
// the cold end, gives visited entries a pass (clearing the bit), evicts the
// first unvisited entry, and resumes from where it stopped.
func TestSieveVictimSelection(t *testing.T) {
	c := New[string, int](3, PolicySIEVE)
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	c.Put("b", 2, time.Hour, CategoryOther, t0)
	c.Put("c", 3, time.Hour, CategoryOther, t0)
	// Visit a and b; c stays unvisited.
	c.Get("a", t0)
	c.Get("b", t0)
	// Hand scans a (visited, cleared) then b (visited, cleared) then c:
	// the only unvisited entry is evicted even though it is the newest.
	c.Put("d", 4, time.Hour, CategoryOther, t0)
	if _, ok := c.Peek("c"); ok {
		t.Fatal("sieve should have evicted the unvisited entry c")
	}
	for _, k := range []string{"a", "b", "d"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	// a and b had their bits cleared during the sweep; the hand wrapped.
	// Next insertion scans from the tail again and evicts a (oldest,
	// now unvisited).
	c.Put("e", 5, time.Hour, CategoryOther, t0)
	if _, ok := c.Peek("a"); ok {
		t.Fatal("sieve should have evicted a on the second sweep")
	}
}

// TestSieveHitDoesNotMove: a SIEVE hit must not change eviction order by
// itself — only the visited bit protects the entry, for exactly one sweep.
func TestSieveHitDoesNotMove(t *testing.T) {
	c := New[string, int](2, PolicySIEVE)
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	c.Put("b", 2, time.Hour, CategoryOther, t0)
	// Many hits on a buy it exactly one pass, not permanent protection.
	for i := 0; i < 5; i++ {
		c.Get("a", t0)
	}
	c.Put("x", 3, time.Hour, CategoryOther, t0) // sweep: a cleared, b evicted
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b should have been evicted")
	}
	c.Put("y", 4, time.Hour, CategoryOther, t0) // a unvisited now → evicted
	if _, ok := c.Peek("a"); ok {
		t.Fatal("a should have been evicted on the second insertion")
	}
}

// TestClockSecondChance pins CLOCK: a referenced cold-end entry is recycled
// to the head with its bit cleared, and the first unreferenced entry from
// the cold end is the victim.
func TestClockSecondChance(t *testing.T) {
	c := New[string, int](3, PolicyCLOCK)
	c.Put("a", 1, time.Hour, CategoryOther, t0)
	c.Put("b", 2, time.Hour, CategoryOther, t0)
	c.Put("c", 3, time.Hour, CategoryOther, t0)
	c.Get("a", t0) // reference the cold-end entry
	// Victim scan: a referenced → recycled to head; b unreferenced → out.
	c.Put("d", 4, time.Hour, CategoryOther, t0)
	if _, ok := c.Peek("b"); ok {
		t.Fatal("clock should have evicted b (a had a second chance)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	// a's bit was consumed by the recycle: with no new reference it is
	// now the cold-end victim.
	c.Put("e", 5, time.Hour, CategoryOther, t0)
	if _, ok := c.Peek("c"); ok {
		t.Fatal("clock should have evicted c (next unreferenced cold entry)")
	}
}

// TestPolicyChurnInvariants runs heavy insert/evict churn under every
// policy: occupancy stays bounded, category counts stay consistent, and
// every surviving key is servable.
func TestPolicyChurnInvariants(t *testing.T) {
	const capacity = 16
	for _, kind := range Policies() {
		t.Run(kind.String(), func(t *testing.T) {
			c := New[int, int](capacity, kind)
			for i := 0; i < 40*capacity; i++ {
				c.Put(i, i, time.Hour, Category(i%2), t0)
				if i%3 == 0 {
					c.Get(i-5, t0) // mix hits/misses into the scan state
				}
				if c.Len() > capacity {
					t.Fatalf("Len %d exceeds capacity %d", c.Len(), capacity)
				}
			}
			if c.Len() != capacity {
				t.Fatalf("Len = %d, want full cache %d", c.Len(), capacity)
			}
			counts := c.CategoryCounts()
			if counts[0]+counts[1] != capacity {
				t.Fatalf("category counts %v do not sum to %d", counts, capacity)
			}
			st := c.Stats()
			if st.Evictions == 0 {
				t.Fatal("churn must record evictions")
			}
			// Every key the index knows must round-trip through Get.
			live := 0
			for i := 0; i < 40*capacity; i++ {
				if v, ok := c.Get(i, t0.Add(time.Second)); ok {
					if v != i {
						t.Fatalf("key %d returned value %d", i, v)
					}
					live++
				}
			}
			if live != capacity {
				t.Fatalf("servable entries = %d, want %d", live, capacity)
			}
		})
	}
}

// TestPolicyZeroAllocHotPath: for every policy, the hit path, the refresh
// path and full evict-then-insert churn must not allocate once the slab has
// grown.
func TestPolicyZeroAllocHotPath(t *testing.T) {
	for _, kind := range Policies() {
		t.Run(kind.String(), func(t *testing.T) {
			const capacity = 64
			c := New[string, int](capacity, kind)
			keys := make([]string, 2*capacity)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", i)
			}
			for i := 0; i < capacity; i++ {
				c.Put(keys[i], i, time.Hour, CategoryOther, t0)
			}
			now := t0.Add(time.Second)
			i := 0
			if allocs := testing.AllocsPerRun(500, func() {
				i = (i + 7) % capacity
				c.Get(keys[i], now)
			}); allocs != 0 {
				t.Errorf("Get allocated %.1f times per op, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(500, func() {
				c.Put(keys[3], 1, time.Hour, CategoryOther, now)
				c.PutLowPriority(keys[5], 2, time.Hour, CategoryDisposable, now)
			}); allocs != 0 {
				t.Errorf("Put refresh allocated %.1f times per op, want 0", allocs)
			}
			j := 0
			if allocs := testing.AllocsPerRun(500, func() {
				j = (j + 1) % len(keys)
				c.Put(keys[j], j, time.Hour, Category(j%2), now) // mostly evict+insert
			}); allocs != 0 {
				t.Errorf("eviction churn allocated %.1f times per op, want 0", allocs)
			}
		})
	}
}
