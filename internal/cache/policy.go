package cache

// This file is the eviction-policy seam. The cache container (lru.go) owns
// the slab, the key index, the TTL timer wheel and the statistics; which
// occupied slot an insertion displaces is delegated to a Policy operating on
// a non-generic ordering arena (order). Keeping the arena outside the
// generic slot payload means one policy implementation serves every (K, V)
// instantiation, and switching policies costs a single interface field — no
// per-policy allocations, no change to the 0 allocs/op hot path.

// PolicyKind selects one of the built-in eviction policies.
type PolicyKind uint8

// Built-in eviction policies.
const (
	// PolicyLRU is the classic least-recently-used order: hits promote to
	// the front, insertions evict the tail. The default, and the policy
	// every paper measurement runs under.
	PolicyLRU PolicyKind = iota
	// PolicySIEVE is the SIEVE algorithm (Zhang et al., NSDI'24): a FIFO
	// queue with a visited bit and a hand sweeping from the cold end
	// toward the head. Hits set the bit and never move the entry, so the
	// hit path is a single store — cheaper than LRU promotion.
	PolicySIEVE
	// PolicyCLOCK is the second-chance FIFO: the cold-end entry is evicted
	// if its reference bit is clear, otherwise the bit is cleared and the
	// entry is recycled to the head. Hits set the bit in place.
	PolicyCLOCK
)

// String renders the policy name as accepted by ParsePolicy.
func (k PolicyKind) String() string {
	switch k {
	case PolicySIEVE:
		return "sieve"
	case PolicyCLOCK:
		return "clock"
	default:
		return "lru"
	}
}

// ParsePolicy maps a -cache-policy flag value to its kind.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "lru", "":
		return PolicyLRU, nil
	case "sieve":
		return PolicySIEVE, nil
	case "clock":
		return PolicyCLOCK, nil
	}
	return PolicyLRU, errUnknownPolicy(s)
}

type errUnknownPolicy string

func (e errUnknownPolicy) Error() string {
	return "unknown cache policy " + string(e) + " (want lru, sieve, or clock)"
}

// Policies lists every built-in PolicyKind, for sweeps and tests.
func Policies() []PolicyKind { return []PolicyKind{PolicyLRU, PolicySIEVE, PolicyCLOCK} }

// order is the ordering arena a Policy operates on: intrusive prev/next
// links and one mark bit per slab slot, plus the list ends and the scan
// hand. The container grows it in lockstep with the slab; free slots are
// chained through next while unfiled.
type order struct {
	prev, next []int32
	mark       []bool
	head, tail int32 // head = hottest end, tail = cold end
	hand       int32 // SIEVE scan position (nilIdx = start from tail)
}

func newOrder() order { return order{head: nilIdx, tail: nilIdx, hand: nilIdx} }

func (o *order) grow() {
	o.prev = append(o.prev, nilIdx)
	o.next = append(o.next, nilIdx)
	o.mark = append(o.mark, false)
}

func (o *order) unlink(i int32) {
	if p := o.prev[i]; p != nilIdx {
		o.next[p] = o.next[i]
	} else {
		o.head = o.next[i]
	}
	if n := o.next[i]; n != nilIdx {
		o.prev[n] = o.prev[i]
	} else {
		o.tail = o.prev[i]
	}
	o.prev[i] = nilIdx
	o.next[i] = nilIdx
}

func (o *order) pushFront(i int32) {
	o.prev[i] = nilIdx
	o.next[i] = o.head
	if o.head != nilIdx {
		o.prev[o.head] = i
	}
	o.head = i
	if o.tail == nilIdx {
		o.tail = i
	}
}

func (o *order) pushBack(i int32) {
	o.next[i] = nilIdx
	o.prev[i] = o.tail
	if o.tail != nilIdx {
		o.next[o.tail] = i
	}
	o.tail = i
	if o.head == nilIdx {
		o.head = i
	}
}

func (o *order) moveToFront(i int32) {
	if o.head == i {
		return
	}
	o.unlink(i)
	o.pushFront(i)
}

func (o *order) moveToBack(i int32) {
	if o.tail == i {
		return
	}
	o.unlink(i)
	o.pushBack(i)
}

// Policy decides which occupied slot an insertion displaces. Implementations
// are stateless singletons — every bit of policy state lives in the order
// arena — so a policy is shared by all caches and all key/value types.
//
// The methods are unexported: the set of invariants a policy must uphold
// (every filed slot reachable from head, hand validity across removals) is
// easiest to keep honest inside the package. New policies are added here and
// surfaced through PolicyKind.
type Policy interface {
	// Kind identifies the policy.
	Kind() PolicyKind
	// insert files freshly allocated slot i. low asks for the cold end:
	// the entry should be an early eviction victim.
	insert(o *order, i int32, low bool)
	// touch records a hit on slot i.
	touch(o *order, i int32)
	// refresh records an in-place overwrite of slot i; low demotes it.
	refresh(o *order, i int32, low bool)
	// remove unfiles slot i (eviction, expiry reclaim, or Remove).
	remove(o *order, i int32)
	// victim returns the slot the next insertion should evict, advancing
	// any internal scan state. nilIdx when nothing is filed.
	victim(o *order) int32
}

// policyFor returns the shared singleton for kind.
func policyFor(kind PolicyKind) Policy {
	switch kind {
	case PolicySIEVE:
		return sieveSingleton
	case PolicyCLOCK:
		return clockSingleton
	default:
		return lruSingleton
	}
}

var (
	lruSingleton   Policy = lruPolicy{}
	sieveSingleton Policy = sievePolicy{}
	clockSingleton Policy = clockPolicy{}
)

// lruPolicy reproduces the historical behaviour exactly: recency list with
// front promotion; the tail is always the victim. PutLowPriority's contract
// — the entry is the next victim and can never displace a live entry — holds
// precisely under this policy.
type lruPolicy struct{}

func (lruPolicy) Kind() PolicyKind { return PolicyLRU }

func (lruPolicy) insert(o *order, i int32, low bool) {
	if low {
		o.pushBack(i)
	} else {
		o.pushFront(i)
	}
}

func (lruPolicy) touch(o *order, i int32) { o.moveToFront(i) }

func (lruPolicy) refresh(o *order, i int32, low bool) {
	if low {
		o.moveToBack(i)
	} else {
		o.moveToFront(i)
	}
}

func (lruPolicy) remove(o *order, i int32) { o.unlink(i) }

func (lruPolicy) victim(o *order) int32 { return o.tail }

// sievePolicy: insertions join the head of a FIFO queue; a hit sets the
// visited bit without moving the entry. The hand sweeps from the tail
// toward the head, clearing visited bits, and evicts the first unvisited
// entry it meets; it then rests one step hotter, so retained entries are
// examined again only after a full lap. Low-priority entries join the tail
// unvisited — cold, though the next-victim guarantee is LRU-only (the hand
// may be mid-sweep elsewhere).
type sievePolicy struct{}

func (sievePolicy) Kind() PolicyKind { return PolicySIEVE }

func (sievePolicy) insert(o *order, i int32, low bool) {
	if low {
		o.pushBack(i)
	} else {
		o.pushFront(i)
	}
	o.mark[i] = false
}

func (sievePolicy) touch(o *order, i int32) { o.mark[i] = true }

func (sievePolicy) refresh(o *order, i int32, low bool) {
	if low {
		o.mark[i] = false
		o.moveToBack(i)
	} else {
		o.mark[i] = true
	}
}

func (sievePolicy) remove(o *order, i int32) {
	if o.hand == i {
		o.hand = o.prev[i]
	}
	o.unlink(i)
}

func (sievePolicy) victim(o *order) int32 {
	h := o.hand
	if h == nilIdx {
		h = o.tail
	}
	if h == nilIdx {
		return nilIdx
	}
	// Each visited entry is unmarked exactly once per lap, so the scan
	// terminates within one full rotation.
	for o.mark[h] {
		o.mark[h] = false
		h = o.prev[h]
		if h == nilIdx {
			h = o.tail
		}
	}
	o.hand = o.prev[h] // may be nilIdx: the next sweep wraps to the tail
	return h
}

// clockPolicy: second-chance FIFO. The cold-end entry is the candidate; a
// set reference bit buys it one recycle to the head (bit cleared), a clear
// bit makes it the victim. Hits set the bit in place, so like SIEVE the hit
// path never touches the list links.
type clockPolicy struct{}

func (clockPolicy) Kind() PolicyKind { return PolicyCLOCK }

func (clockPolicy) insert(o *order, i int32, low bool) {
	if low {
		o.pushBack(i)
	} else {
		o.pushFront(i)
	}
	o.mark[i] = false
}

func (clockPolicy) touch(o *order, i int32) { o.mark[i] = true }

func (clockPolicy) refresh(o *order, i int32, low bool) {
	if low {
		o.mark[i] = false
		o.moveToBack(i)
	} else {
		o.mark[i] = true
	}
}

func (clockPolicy) remove(o *order, i int32) { o.unlink(i) }

func (clockPolicy) victim(o *order) int32 {
	if o.tail == nilIdx {
		return nilIdx
	}
	// Every recycle clears one bit, so at most one full rotation.
	for o.mark[o.tail] {
		o.mark[o.tail] = false
		o.moveToFront(o.tail)
	}
	return o.tail
}
