package cache

import (
	"sync/atomic"
	"time"
)

// Timer-wheel TTL expiry. Every filed slot sits on exactly one intrusive
// doubly-linked expiry list, chosen by its expiry tick (whole seconds since
// the wheel's base). The wheel is hierarchical:
//
//	level 0:  512 buckets × 1 s   — expiries within the next 512 s
//	level 1:  512 buckets × 512 s — expiries within the next ~3.6 days
//	overflow: one bucket          — everything beyond that
//
// Advance walks the level-0 bucket of each elapsed tick and reclaims every
// entry on it — no per-entry timestamp comparison, no scanning of live
// entries. Each time level 0 completes a lap (cur crosses a 512-tick
// boundary) the next level-1 bucket is cascaded down into level 0 and the
// overflow list is re-filed. DNS TTLs are clamped to ≤ 24 h upstream, so in
// practice everything lands in levels 0–1 and the overflow list stays empty.
//
// Per-bucket entry counts and the wheel position are atomics so a telemetry
// scrape can compute live-vs-expired occupancy (LiveLen) while the owning
// worker mutates the cache — the same single-owner/racy-reader contract the
// slab already uses for size and the stat counters.
const (
	wheelL0Bits = 9
	wheelL0Size = 1 << wheelL0Bits // 512 one-second buckets
	wheelL1Size = 512              // 512 buckets of 512 s each

	wheelL0Span = int64(wheelL0Size)               // ticks ahead coverable by level 0
	wheelL1Span = int64(wheelL0Size) * wheelL1Size // ticks ahead coverable by levels 0+1
	wheelL1Max  = wheelL1Span - wheelL0Span        // safe level-1 horizon (avoids window aliasing)

	wheelOverflowIdx = wheelL0Size + wheelL1Size // flat index of the overflow bucket
	wheelBuckets     = wheelOverflowIdx + 1
)

type wheel struct {
	// Per-slot intrusive links, grown in lockstep with the slab. bucket
	// records which flat bucket a slot is filed in (nilIdx = not filed),
	// so unfile is O(1) and double-unfiling is a no-op. expiry keeps the
	// slot's expiry tick so cascades re-file without touching the generic
	// slab.
	prev, next, bucket []int32
	expiry             []int64

	heads  [wheelBuckets]int32
	counts [wheelBuckets]atomic.Int32

	count   int64 // total filed entries (owner-only)
	base    int64 // unix second of tick 0, fixed at the first file
	started bool  // owner-only: base is set

	cur   atomic.Int64 // wheel position: every tick < cur has been reclaimed
	clock atomic.Int64 // high-water tick observed from callers' now
}

// init readies a zero-value wheel in place (the struct embeds atomics, so
// it is never copied after construction).
func (w *wheel) init() {
	for i := range w.heads {
		w.heads[i] = nilIdx
	}
}

func (w *wheel) grow() {
	w.prev = append(w.prev, nilIdx)
	w.next = append(w.next, nilIdx)
	w.bucket = append(w.bucket, nilIdx)
	w.expiry = append(w.expiry, 0)
}

// observe folds a caller-supplied wall-clock reading into the scrape-visible
// high-water tick. One load and a rare store — nothing on the hot path.
func (w *wheel) observe(now time.Time) {
	if !w.started {
		return
	}
	if t := now.Unix() - w.base; t > w.clock.Load() {
		w.clock.Store(t)
	}
}

// tickOf converts an absolute time to a wheel tick (may be negative before
// the wheel's base; callers clamp).
func (w *wheel) tickOf(t time.Time) int64 { return t.Unix() - w.base }

// bucketFor picks the flat bucket for an entry expiring at tick e when the
// wheel is at cur. Level 1 is capped at wheelL1Max (not wheelL1Span) so a
// filed entry's window always lies within the current level-1 rotation —
// otherwise an entry just under the horizon could alias into a window about
// to cascade and bounce forever.
func bucketFor(e, cur int64) int32 {
	d := e - cur
	if d < wheelL0Span {
		return int32(e & (wheelL0Size - 1))
	}
	if d < wheelL1Max {
		return int32(wheelL0Size + (e>>wheelL0Bits)&(wheelL1Size-1))
	}
	return wheelOverflowIdx
}

// file threads slot i onto the expiry list for tick e (clamped to the wheel
// position, so already-past expiries land in the next reclaimable bucket).
func (w *wheel) file(i int32, e int64) {
	cur := w.cur.Load()
	if e < cur {
		e = cur
	}
	b := bucketFor(e, cur)
	h := w.heads[b]
	w.prev[i] = nilIdx
	w.next[i] = h
	if h != nilIdx {
		w.prev[h] = i
	}
	w.heads[b] = i
	w.bucket[i] = b
	w.expiry[i] = e
	w.counts[b].Add(1)
	w.count++
}

// unfile removes slot i from its expiry list. No-op if not filed.
func (w *wheel) unfile(i int32) {
	b := w.bucket[i]
	if b == nilIdx {
		return
	}
	if p := w.prev[i]; p != nilIdx {
		w.next[p] = w.next[i]
	} else {
		w.heads[b] = w.next[i]
	}
	if n := w.next[i]; n != nilIdx {
		w.prev[n] = w.prev[i]
	}
	w.prev[i] = nilIdx
	w.next[i] = nilIdx
	w.bucket[i] = nilIdx
	w.counts[b].Add(-1)
	w.count--
}

// cascade refiles the level-1 window reached at cur down into level 0, then
// re-files the overflow list (entries newly within the level-1 horizon move
// down; the rest return to overflow). Called whenever cur crosses a
// 512-tick boundary. Pure list surgery — never reclaims, never allocates.
func (w *wheel) cascade(cur int64) {
	l1 := int32(wheelL0Size + (cur>>wheelL0Bits)&(wheelL1Size-1))
	w.drainInto(l1, cur)
	w.drainInto(wheelOverflowIdx, cur)
}

// drainInto detaches bucket b wholesale and re-files each entry against the
// current wheel position. The detach-first shape makes refiling into b
// itself safe (overflow entries still beyond the horizon just re-join it).
func (w *wheel) drainInto(b int32, cur int64) {
	i := w.heads[b]
	if i == nilIdx {
		return
	}
	w.heads[b] = nilIdx
	w.counts[b].Store(0)
	for i != nilIdx {
		n := w.next[i]
		e := w.expiry[i]
		if e < cur {
			e = cur
		}
		nb := bucketFor(e, cur)
		h := w.heads[nb]
		w.prev[i] = nilIdx
		w.next[i] = h
		if h != nilIdx {
			w.prev[h] = i
		}
		w.heads[nb] = i
		w.bucket[i] = nb
		w.counts[nb].Add(1)
		i = n
	}
}
