package cache

import (
	"fmt"
	"testing"
	"time"
)

// TestAdvanceReclaimsExpired: the wheel reclaims whole buckets of dead
// entries without any lookup touching them. Reclaims are counted separately
// from lookup-time expiries.
func TestAdvanceReclaimsExpired(t *testing.T) {
	c := NewLRU[string, int](16)
	c.Put("short", 1, 5*time.Second, CategoryDisposable, t0)
	c.Put("mid", 2, 30*time.Second, CategoryOther, t0)
	c.Put("long", 3, time.Hour, CategoryOther, t0)

	c.Advance(t0.Add(10 * time.Second))
	if c.Len() != 2 {
		t.Fatalf("Len = %d after first advance, want 2", c.Len())
	}
	c.Advance(t0.Add(2 * time.Minute))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after second advance, want 1", c.Len())
	}
	st := c.Stats()
	if st.Reclaims != 2 {
		t.Errorf("Reclaims = %d, want 2", st.Reclaims)
	}
	if st.Expiries != 0 {
		t.Errorf("Expiries = %d, want 0 (wheel reclaims are not lookup expiries)", st.Expiries)
	}
	if _, ok := c.Get("long", t0.Add(2*time.Minute)); !ok {
		t.Error("long-TTL entry should have survived")
	}
	if _, ok := c.Peek("short"); ok {
		t.Error("reclaimed entry still visible to Peek")
	}
	if counts := c.CategoryCounts(); counts != [2]int{1, 0} {
		t.Errorf("CategoryCounts = %v, want {1 0}", counts)
	}
}

// TestAdvanceNeverReclaimsLive: an entry is only reclaimed once its expiry
// second has wholly passed — advancing to any instant before that leaves it
// servable.
func TestAdvanceNeverReclaimsLive(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1, 30*time.Second, CategoryOther, t0)
	c.Advance(t0.Add(30*time.Second + 500*time.Millisecond))
	// The expiry falls inside the wheel's current tick: the lazy Get check
	// still rejects it, but Advance must not have reclaimed a tick that
	// has not wholly passed for other entries sharing it.
	c.Put("b", 2, 29*time.Second, CategoryOther, t0.Add(time.Second))
	if _, ok := c.Get("b", t0.Add(29*time.Second)); !ok {
		t.Error("b is live and must be servable")
	}
}

// TestAdvanceIdleFastForward: an empty (or fully reclaimed) cache
// fast-forwards across arbitrary gaps in O(1) and keeps working.
func TestAdvanceIdleFastForward(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1, time.Second, CategoryOther, t0)
	c.Advance(t0.Add(48 * time.Hour)) // day-boundary style jump
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	later := t0.Add(72 * time.Hour)
	c.Put("b", 2, time.Minute, CategoryOther, later)
	if _, ok := c.Get("b", later.Add(time.Second)); !ok {
		t.Error("cache must keep serving after a large fast-forward")
	}
	c.Advance(later.Add(2 * time.Minute))
	if c.Len() != 0 {
		t.Errorf("Len = %d after post-jump expiry, want 0", c.Len())
	}
}

// TestAdvanceCascade: entries beyond the level-0 horizon (>512 s) cascade
// down from level 1 and are reclaimed at the right time, not at the
// cascade boundary.
func TestAdvanceCascade(t *testing.T) {
	c := NewLRU[int, int](64)
	// TTLs straddling the 512 s level-0 span and a few level-1 windows.
	ttls := []time.Duration{
		100 * time.Second,
		511 * time.Second,
		512 * time.Second,
		700 * time.Second,
		1500 * time.Second,
		3000 * time.Second,
	}
	for i, ttl := range ttls {
		c.Put(i, i, ttl, CategoryOther, t0)
	}
	// Walk forward one minute at a time; at each step every entry with
	// ttl < elapsed must be gone and every other entry must remain.
	for elapsed := time.Minute; elapsed <= 3200*time.Second; elapsed += time.Minute {
		c.Advance(t0.Add(elapsed))
		for i, ttl := range ttls {
			_, ok := c.Peek(i)
			if ttl+time.Second <= elapsed && ok {
				t.Fatalf("entry %d (ttl %v) still present at +%v", i, ttl, elapsed)
			}
			if ttl > elapsed && !ok {
				t.Fatalf("entry %d (ttl %v) reclaimed early at +%v", i, ttl, elapsed)
			}
		}
	}
	if st := c.Stats(); st.Reclaims != uint64(len(ttls)) {
		t.Errorf("Reclaims = %d, want %d", st.Reclaims, len(ttls))
	}
}

// TestAdvanceOverflow: entries beyond the level-1 horizon (~3 days) park in
// the overflow bucket and still expire correctly as the wheel reaches them.
func TestAdvanceOverflow(t *testing.T) {
	c := NewLRU[string, int](8)
	c.Put("far", 1, 4*24*time.Hour, CategoryOther, t0)
	c.Put("near", 2, time.Hour, CategoryOther, t0)
	for d := 12 * time.Hour; d <= 5*24*time.Hour; d += 12 * time.Hour {
		c.Advance(t0.Add(d))
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after 5 days, want 0", c.Len())
	}
	// And an overflow entry must survive until its actual expiry.
	c.Put("far2", 3, 4*24*time.Hour, CategoryOther, t0.Add(5*24*time.Hour))
	c.Advance(t0.Add(8 * 24 * time.Hour))
	if _, ok := c.Peek("far2"); !ok {
		t.Error("overflow entry reclaimed before its expiry")
	}
	c.Advance(t0.Add(10 * 24 * time.Hour))
	if _, ok := c.Peek("far2"); ok {
		t.Error("overflow entry still present after expiry")
	}
}

// TestPutRefreshRefilesWheel: refreshing a key with a new TTL must move it
// to the new expiry bucket — the old filing must not reclaim it early.
func TestPutRefreshRefilesWheel(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1, 10*time.Second, CategoryOther, t0)
	c.Put("a", 2, time.Hour, CategoryOther, t0) // extend
	c.Advance(t0.Add(time.Minute))
	if v, ok := c.Get("a", t0.Add(time.Minute)); !ok || v != 2 {
		t.Fatalf("Get = (%v, %v), want (2, true) after TTL extension", v, ok)
	}
	c.Put("a", 3, 5*time.Second, CategoryOther, t0.Add(time.Minute)) // shorten
	c.Advance(t0.Add(2 * time.Minute))
	if _, ok := c.Peek("a"); ok {
		t.Error("entry should have been reclaimed after TTL shortening")
	}
}

// TestLiveLenTracksOccupancy: LiveLen excludes entries whose expiry second
// has passed by the observed clock but which the wheel has not reclaimed
// yet; after Advance the two lengths agree again.
func TestLiveLenTracksOccupancy(t *testing.T) {
	c := NewLRU[string, int](16)
	c.Put("short", 1, 5*time.Second, CategoryOther, t0)
	c.Put("long", 2, time.Hour, CategoryOther, t0)
	if l, ll := c.Len(), c.LiveLen(); l != 2 || ll != 2 {
		t.Fatalf("Len/LiveLen = %d/%d, want 2/2", l, ll)
	}
	// Observe a later clock via a miss on an unrelated key — no reclaim.
	c.Get("other", t0.Add(time.Minute))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (no reclaim yet)", c.Len())
	}
	if ll := c.LiveLen(); ll != 1 {
		t.Fatalf("LiveLen = %d, want 1 (short entry past expiry)", ll)
	}
	c.Advance(t0.Add(time.Minute))
	if l, ll := c.Len(), c.LiveLen(); l != 1 || ll != 1 {
		t.Errorf("Len/LiveLen = %d/%d after Advance, want 1/1", l, ll)
	}
}

// TestAdvanceZeroAlloc: the wheel step — including bucket reclaim and
// level-1 cascades — must not allocate; it runs on the resolve hot path.
func TestAdvanceZeroAlloc(t *testing.T) {
	for _, kind := range Policies() {
		t.Run(kind.String(), func(t *testing.T) {
			c := New[string, int](1024, kind)
			now := t0
			for i := 0; i < 512; i++ {
				c.Put(fmt.Sprintf("k%d", i), i, time.Duration(1+i%900)*time.Second, CategoryOther, now)
			}
			allocs := testing.AllocsPerRun(600, func() {
				now = now.Add(3 * time.Second)
				c.Advance(now)
			})
			if allocs != 0 {
				t.Errorf("Advance allocated %.1f times per op, want 0", allocs)
			}
		})
	}
}
