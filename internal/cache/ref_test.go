package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// refEntry is the naive reference model: a map of key → (value, expiry,
// category) with no capacity bound and timestamp checks on every lookup.
type refEntry struct {
	val int
	exp time.Time
	cat Category
}

// TestReferenceModelProperty drives every policy with a randomized op
// sequence — Put/PutLowPriority/Get/Peek/Remove/Advance over skewed keys
// and mixed TTLs — and cross-checks each observation against the reference.
//
// With capacity ≥ the key universe nothing is ever evicted, so the cache
// must agree with the model exactly: Get hits iff the model holds an
// unexpired entry, with the same value. With a small capacity evictions are
// policy-specific, so the check weakens to soundness: whatever the cache
// returns must match the model, and occupancy stays within capacity.
func TestReferenceModelProperty(t *testing.T) {
	const keyUniverse = 64
	for _, kind := range Policies() {
		for _, cfg := range []struct {
			name     string
			capacity int
			exact    bool
		}{
			{"unbounded", keyUniverse + 8, true},
			{"pressured", keyUniverse / 4, false},
		} {
			t.Run(kind.String()+"/"+cfg.name, func(t *testing.T) {
				runReferenceModel(t, kind, cfg.capacity, cfg.exact, keyUniverse)
			})
		}
	}
}

func runReferenceModel(t *testing.T, kind PolicyKind, capacity int, exact bool, keyUniverse int) {
	t.Helper()
	rng := rand.New(rand.NewSource(0xD15C0))
	c := New[string, int](capacity, kind)
	model := make(map[string]refEntry)
	keys := make([]string, keyUniverse)
	for i := range keys {
		keys[i] = fmt.Sprintf("name%d", i)
	}
	// Zipf-ish skew: low indices are hot.
	pick := func() string {
		i := rng.Intn(keyUniverse)
		if rng.Intn(4) != 0 {
			i = rng.Intn(1 + i/4)
		}
		return keys[i]
	}
	now := t0
	modelLive := func(k string) (refEntry, bool) {
		e, ok := model[k]
		if !ok || !now.Before(e.exp) {
			return refEntry{}, false
		}
		return e, true
	}
	for op := 0; op < 20000; op++ {
		// Time moves forward in uneven sub-second to multi-second hops.
		now = now.Add(time.Duration(rng.Intn(2500)) * time.Millisecond)
		k := pick()
		switch rng.Intn(10) {
		case 0, 1, 2: // Put
			v := rng.Int()
			ttl := time.Duration(1+rng.Intn(600)) * time.Second
			cat := Category(rng.Intn(2))
			c.Put(k, v, ttl, cat, now)
			model[k] = refEntry{val: v, exp: now.Add(ttl), cat: cat}
		case 3: // PutLowPriority
			v := rng.Int()
			ttl := time.Duration(1+rng.Intn(30)) * time.Second
			c.PutLowPriority(k, v, ttl, CategoryDisposable, now)
			model[k] = refEntry{val: v, exp: now.Add(ttl), cat: CategoryDisposable}
		case 4: // Remove
			c.Remove(k)
			delete(model, k)
		case 5: // Advance; also age the model
			c.Advance(now)
		default: // Get + occasional Peek
			v, ok := c.Get(k, now)
			ref, live := modelLive(k)
			if ok {
				if v != ref.val || !live {
					t.Fatalf("op %d: Get(%s) = (%d, true) disagrees with model (%+v, live=%v)", op, k, v, ref, live)
				}
			} else if exact && live {
				t.Fatalf("op %d: Get(%s) missed but model holds live entry %+v", op, k, ref)
			}
			if rng.Intn(8) == 0 {
				e, ok := c.Peek(k)
				if ok {
					m, inModel := model[k]
					if !inModel || e.Value != m.val || !e.Expires.Equal(m.exp) || e.Category != m.cat {
						t.Fatalf("op %d: Peek(%s) = %+v disagrees with model %+v (present=%v)", op, k, e, m, inModel)
					}
				} else if exact {
					if _, live := modelLive(k); live {
						t.Fatalf("op %d: Peek(%s) missing but model holds a live entry", op, k)
					}
				}
			}
		}
		if c.Len() > capacity {
			t.Fatalf("op %d: Len %d exceeds capacity %d", op, c.Len(), capacity)
		}
		if ll, l := c.LiveLen(), c.Len(); ll < 0 || ll > l {
			t.Fatalf("op %d: LiveLen %d outside [0, Len=%d]", op, ll, l)
		}
	}
	// Final sweep in the exact configuration: every live model entry must
	// still be servable, and occupancy must equal the model entries the
	// wheel retains (expiry second not wholly passed — the wheel works at
	// one-second granularity, the lazy Get check below it).
	if exact {
		now = now.Add(2 * time.Second)
		c.Advance(now)
		retained := 0
		for _, e := range model {
			if e.exp.Unix() >= now.Unix() {
				retained++
			}
		}
		if c.Len() != retained {
			t.Fatalf("final: Len = %d, want %d wheel-retained model entries", c.Len(), retained)
		}
		for k, e := range model {
			if !now.Before(e.exp) {
				continue
			}
			v, ok := c.Get(k, now)
			if !ok || v != e.val {
				t.Fatalf("final: Get(%s) = (%d, %v), model %+v", k, v, ok, e)
			}
		}
	}
}
