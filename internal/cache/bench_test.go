package cache

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkPutGet(b *testing.B) {
	c := NewLRU[string, int](1 << 14)
	now := time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)
	keys := make([]string, 1<<15)
	for i := range keys {
		keys[i] = fmt.Sprintf("name%d.example.com|A", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if _, ok := c.Get(k, now); !ok {
			c.Put(k, i, time.Minute, CategoryOther, now)
		}
	}
}

func BenchmarkEvictionChurn(b *testing.B) {
	c := NewLRU[string, int](256)
	now := time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, time.Hour, CategoryDisposable, now)
	}
}
