// DNSSEC load (paper Section VI-B): with disposable zones signed and the
// resolver validating, every disposable query forces a genuine Ed25519
// signature verification whose result is never reused from cache.
//
//	go run ./examples/dnssecload
package main

import (
	"fmt"
	"log"

	"dnsnoise/internal/experiments"
)

func main() {
	res, err := experiments.DNSSECLoad(experiments.Small())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Printf("\nauthoritative signings performed: %d (one per never-reused disposable RRset)\n", res.SignaturesSigned)
	fmt.Println("a non-disposable answer amortizes its one validation across every later cache hit;")
	fmt.Println("a disposable answer's validation is pure overhead — it will never be asked again.")
}
