// Quickstart: the public dnsnoise API on a hand-rolled observation window.
//
// It fabricates one hour of passive DNS observations — a McAfee-style
// file-reputation zone emitting one-time names next to ordinary web zones —
// trains the classifier, and mines the window for disposable zones.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dnsnoise"
)

const tokenAlphabet = "0123456789abcdefghijklmnopqrstuvwxyz"

func token(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = tokenAlphabet[rng.Intn(len(tokenAlphabet))]
	}
	return string(b)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	now := time.Date(2011, 12, 1, 9, 0, 0, 0, time.UTC)
	ds := dnsnoise.NewDataset()

	// Labeled training zones: five disposable signaling zones and five
	// ordinary web zones (stand-ins for the paper's manually verified
	// 398 + 401 sets).
	var labeled []dnsnoise.LabeledZone
	for z := 0; z < 5; z++ {
		zone := fmt.Sprintf("gti.avvendor%d.com", z)
		labeled = append(labeled, dnsnoise.LabeledZone{Zone: zone, Disposable: true})
		// One-time names: each queried once, each a cache miss.
		for i := 0; i < 20; i++ {
			name := token(rng, 24) + "." + zone
			rec := dnsnoise.Record{
				Time: now, QName: name, Name: name,
				Type: "A", TTL: 60, RData: fmt.Sprintf("127.0.0.%d", rng.Intn(255)),
			}
			if err := ds.AddBelow(rec); err != nil {
				return err
			}
			if err := ds.AddAbove(rec); err != nil {
				return err
			}
		}
	}
	hosts := []string{"www", "mail", "api", "img", "shop", "news", "login", "m", "blog", "static"}
	for z := 0; z < 5; z++ {
		zone := fmt.Sprintf("webshop%d.com", z)
		labeled = append(labeled, dnsnoise.LabeledZone{Zone: zone, Disposable: false})
		// Hot names: many queries below, a single refresh above.
		for _, h := range hosts {
			name := h + "." + zone
			rec := dnsnoise.Record{
				Time: now, QName: name, Name: name,
				Type: "A", TTL: 3600, RData: fmt.Sprintf("198.18.0.%d", rng.Intn(255)),
			}
			for q := 0; q < 20+rng.Intn(30); q++ {
				if err := ds.AddBelow(rec); err != nil {
					return err
				}
			}
			if err := ds.AddAbove(rec); err != nil {
				return err
			}
		}
	}

	// An UNLABELED zone the miner has never seen: the target.
	const target = "avqs.mystery-vendor.net"
	for i := 0; i < 30; i++ {
		name := "0.0.0.0.1.0.0.4e." + token(rng, 26) + "." + target
		rec := dnsnoise.Record{
			Time: now, QName: name, Name: name,
			Type: "A", TTL: 60, RData: "127.0.4.2",
		}
		if err := ds.AddBelow(rec); err != nil {
			return err
		}
		if err := ds.AddAbove(rec); err != nil {
			return err
		}
	}

	fmt.Printf("dataset: %d distinct resource records\n", ds.NumRecords())

	clf, err := dnsnoise.Train(ds, labeled, dnsnoise.TrainOptions{})
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	findings, err := clf.Mine(ds, dnsnoise.MineOptions{Theta: 0.9})
	if err != nil {
		return fmt.Errorf("mine: %w", err)
	}

	rep := dnsnoise.Summarize(findings)
	fmt.Printf("mined %d disposable zones under %d registrable domains (%d names, %.1f periods/name)\n\n",
		rep.Zones, rep.E2LDs, rep.Names, rep.MeanPeriods)
	for _, f := range findings {
		fmt.Printf("  %-36s depth=%-2d confidence=%.3f names=%d\n",
			f.Zone, f.Depth, f.Confidence, len(f.Names))
	}

	probe := "0.0.0.0.1.0.0.4e.zzz123abc." + target
	fmt.Printf("\nIsDisposable(%q) = %v\n", probe, dnsnoise.IsDisposable(findings, probe))
	fmt.Printf("IsDisposable(%q) = %v\n", "www.webshop0.com", dnsnoise.IsDisposable(findings, "www.webshop0.com"))
	return nil
}
