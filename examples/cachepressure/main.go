// Cache pressure (paper Section VI-A): how a growing share of disposable
// queries fills a fixed-size LRU resolver cache with entries that will
// never be reused, prematurely evicting useful records and inflating
// traffic to the authoritative servers.
//
//	go run ./examples/cachepressure
package main

import (
	"fmt"
	"log"

	"dnsnoise/internal/experiments"
)

func main() {
	scale := experiments.Small()
	// A deliberately small cache makes the eviction pressure visible at
	// simulation scale, as the paper's "periods of heavy load" do at ISP
	// scale.
	res, err := experiments.CachePressure(scale, []float64{0, 0.02, 0.05, 0.1, 0.2, 0.35})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	// Headline: the miss-rate inflation ordinary (non-disposable) queries
	// suffer — the paper's "service degradation" for regular users.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.NonDispMissRate > 0 {
		fmt.Printf("\nnon-disposable miss rate inflated %.2fx (%.1f%% -> %.1f%%) as the disposable share went %.0f%% -> %.0f%%\n",
			last.NonDispMissRate/first.NonDispMissRate,
			first.NonDispMissRate*100, last.NonDispMissRate*100,
			first.DisposableFrac*100, last.DisposableFrac*100)
	}
	fmt.Printf("resolver hit rate degraded from %.1f%% to %.1f%%\n",
		first.HitRate*100, last.HitRate*100)
}
