// Passive DNS growth (paper Figure 15 and Section VI-C): bootstrapping an
// rpDNS database over consecutive days, watching disposable records come to
// dominate it, and applying the wildcard-collapse mitigation driven by the
// zones the miner discovered.
//
//	go run ./examples/pdnsgrowth
package main

import (
	"fmt"
	"log"

	"dnsnoise/internal/experiments"
)

func main() {
	res, err := experiments.Fig15PDNSGrowth(experiments.Small(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	saved := 1 - float64(res.Collapse.BytesAfter)/float64(res.StorageBytes)
	fmt.Printf("\nstoring mined disposable zones as wildcards would cut the database from %.1f MB to %.1f MB (%.0f%% saved)\n",
		float64(res.StorageBytes)/1e6, float64(res.Collapse.BytesAfter)/1e6, saved*100)
}
