package dnsnoise_test

import (
	"fmt"
	"math/rand"
	"time"

	"dnsnoise"
)

// Example walks the full public workflow: build an observation window,
// train on labeled zones, mine, and summarize. The disposable zones use
// McAfee-style one-time hash names; the ordinary zones use hot web hosts.
func Example() {
	const alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"
	rng := rand.New(rand.NewSource(4))
	token := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}

	at := time.Date(2011, 12, 1, 9, 0, 0, 0, time.UTC)
	ds := dnsnoise.NewDataset()
	var labeled []dnsnoise.LabeledZone

	// Disposable zones: one-time names, every query a cache miss.
	for _, zone := range []string{"avqs.av-one.com", "gti.av-two.com", "bl.av-three.org"} {
		labeled = append(labeled, dnsnoise.LabeledZone{Zone: zone, Disposable: true})
		for i := 0; i < 10; i++ {
			name := token(24) + "." + zone
			rec := dnsnoise.Record{Time: at, QName: name, Name: name, Type: "A", TTL: 60, RData: "127.0.0.1"}
			ds.AddBelow(rec)
			ds.AddAbove(rec)
		}
	}
	// Ordinary zones: hot names, many queries below per refresh above.
	for _, zone := range []string{"shop-a.com", "news-b.com", "mail-c.net"} {
		labeled = append(labeled, dnsnoise.LabeledZone{Zone: zone, Disposable: false})
		for _, h := range []string{"www", "mail", "api", "img", "shop", "login"} {
			name := h + "." + zone
			rec := dnsnoise.Record{Time: at, QName: name, Name: name, Type: "A", TTL: 3600, RData: "198.18.0.1"}
			for i := 0; i < 25; i++ {
				ds.AddBelow(rec)
			}
			ds.AddAbove(rec)
		}
	}

	clf, err := dnsnoise.Train(ds, labeled, dnsnoise.TrainOptions{})
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	// An unlabeled window containing a zone the classifier never saw.
	target := dnsnoise.NewDataset()
	for i := 0; i < 12; i++ {
		name := "0.0.0.0.1.0.0.4e." + token(26) + ".avqs.mystery.net"
		rec := dnsnoise.Record{Time: at, QName: name, Name: name, Type: "A", TTL: 60, RData: "127.0.4.2"}
		target.AddBelow(rec)
		target.AddAbove(rec)
	}
	for i := 0; i < 30; i++ {
		rec := dnsnoise.Record{Time: at, QName: "www.benign.org", Name: "www.benign.org", Type: "A", TTL: 3600, RData: "198.18.9.9"}
		target.AddBelow(rec)
	}
	target.AddAbove(dnsnoise.Record{Time: at, QName: "www.benign.org", Name: "www.benign.org", Type: "A", TTL: 3600, RData: "198.18.9.9"})

	findings, err := clf.Mine(target, dnsnoise.MineOptions{Theta: 0.9})
	if err != nil {
		fmt.Println("mine:", err)
		return
	}
	for _, f := range findings {
		fmt.Printf("%s depth=%d names=%d\n", f.Zone, f.Depth, len(f.Names))
	}
	fmt.Println(dnsnoise.IsDisposable(findings, "0.0.0.0.1.0.0.4e.zzzz.avqs.mystery.net"))
	fmt.Println(dnsnoise.IsDisposable(findings, "www.benign.org"))
	// Output:
	// avqs.mystery.net depth=12 names=12
	// true
	// false
}
